package analysis

import (
	"math"

	"repro/internal/model"
	"repro/internal/stats"
)

// ConfoundFinding compares the pooled correlation of two run features
// with the per-vendor correlations. The paper's Section IV reports that
// its correlation exploration of the recent idle-fraction regression
// "remains inconclusive" because "CPU vendor lineups, as well as
// submitted runs affect many features, confounding possible
// correlations" — this analysis makes that confounding visible:
// a pooled correlation whose sign or magnitude collapses within the
// vendor strata is an artifact of vendor composition (Simpson-style),
// not a causal signal.
type ConfoundFinding struct {
	FeatureX, FeatureY string
	Pooled             float64
	WithinAMD          float64
	WithinIntel        float64
	// Confounded is set when the pooled correlation is substantial but
	// loses half its magnitude (or flips sign) in both strata.
	Confounded bool
}

// confoundFeatures are the per-run features the exploration covers.
var confoundFeatures = []struct {
	name   string
	metric Metric
}{
	{"cores", func(r *model.Run) float64 { return float64(r.TotalCores) }},
	{"ghz", func(r *model.Run) float64 { return r.NominalGHz }},
	{"tdp", func(r *model.Run) float64 { return r.TDPWatts }},
	{"mem_gb", func(r *model.Run) float64 { return float64(r.MemGB) }},
	{"idle_frac", (*model.Run).IdleFraction},
	{"idle_quot", (*model.Run).ExtrapolatedIdleQuotient},
	{"overall_eff", (*model.Run).OverallOpsPerWatt},
}

// ConfoundingScan computes pooled vs within-vendor correlations for all
// feature pairs over runs with hardware availability ≥ sinceYear.
func ConfoundingScan(comparable []*model.Run, sinceYear int) []ConfoundFinding {
	var pool, amd, intel []*model.Run
	for _, r := range comparable {
		if r.HWAvail.Year < sinceYear {
			continue
		}
		pool = append(pool, r)
		switch r.CPUVendor {
		case model.VendorAMD:
			amd = append(amd, r)
		case model.VendorIntel:
			intel = append(intel, r)
		}
	}
	column := func(runs []*model.Run, m Metric) []float64 {
		out := make([]float64, len(runs))
		for i, r := range runs {
			out[i] = m(r)
		}
		return out
	}
	corr := func(runs []*model.Run, a, b Metric) float64 {
		r, err := stats.Pearson(column(runs, a), column(runs, b))
		if err != nil {
			return math.NaN()
		}
		return r
	}
	var out []ConfoundFinding
	for i := 0; i < len(confoundFeatures); i++ {
		for j := i + 1; j < len(confoundFeatures); j++ {
			fx, fy := confoundFeatures[i], confoundFeatures[j]
			f := ConfoundFinding{
				FeatureX:    fx.name,
				FeatureY:    fy.name,
				Pooled:      corr(pool, fx.metric, fy.metric),
				WithinAMD:   corr(amd, fx.metric, fy.metric),
				WithinIntel: corr(intel, fx.metric, fy.metric),
			}
			f.Confounded = isConfounded(f)
			out = append(out, f)
		}
	}
	return out
}

// isConfounded flags pooled correlations that do not survive
// stratification by vendor.
func isConfounded(f ConfoundFinding) bool {
	if math.IsNaN(f.Pooled) || math.Abs(f.Pooled) < 0.3 {
		return false
	}
	weak := func(within float64) bool {
		if math.IsNaN(within) {
			return true
		}
		// Sign flip or magnitude collapse below half the pooled value.
		return within*f.Pooled < 0 || math.Abs(within) < math.Abs(f.Pooled)/2
	}
	return weak(f.WithinAMD) && weak(f.WithinIntel)
}
