package analysis

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/synth"
)

// corpus is generated once; analyses are pure functions over it.
var corpus []*model.Run

func dataset(t *testing.T) *Dataset {
	t.Helper()
	if corpus == nil {
		runs, err := synth.Generate(synth.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		corpus = runs
	}
	return BuildDataset(corpus)
}

func TestFunnelMatchesPaper(t *testing.T) {
	ds := dataset(t)
	f := ds.Funnel
	if f.Raw != 1017 || f.Parsed != 960 || f.Comparable != 676 {
		t.Fatalf("funnel %d → %d → %d, want 1017 → 960 → 676",
			f.Raw, f.Parsed, f.Comparable)
	}
	wantParse := map[model.RejectReason]int{
		model.RejectNotAccepted:            40,
		model.RejectAmbiguousDate:          3,
		model.RejectImplausibleDate:        4,
		model.RejectAmbiguousCPUName:       3,
		model.RejectMissingNodeCount:       1,
		model.RejectInconsistentCoreThread: 5,
		model.RejectImplausibleCoreThread:  1,
	}
	for _, rc := range f.ParseStage {
		if rc.Count != wantParse[rc.Reason] {
			t.Errorf("parse stage %v = %d, want %d", rc.Reason, rc.Count, wantParse[rc.Reason])
		}
	}
	wantComp := map[model.RejectReason]int{
		model.RejectNonX86Vendor:      9,
		model.RejectNonServerCPU:      6,
		model.RejectMultiNodeOrBigSMP: 269,
	}
	for _, rc := range f.ComparabilityStage {
		if rc.Count != wantComp[rc.Reason] {
			t.Errorf("comparability %v = %d, want %d", rc.Reason, rc.Count, wantComp[rc.Reason])
		}
	}
}

func TestSubmissionTrendsS2(t *testing.T) {
	ds := dataset(t)
	s := SubmissionTrends(ds.Parsed)
	if math.Abs(s.RunsPerYear0523-44.2) > 1.0 {
		t.Errorf("2005–2023 rate = %.1f, paper 44.2", s.RunsPerYear0523)
	}
	if math.Abs(s.RunsPerYear1317-15.2) > 1.0 {
		t.Errorf("2013–2017 rate = %.1f, paper 15.2", s.RunsPerYear1317)
	}
	if math.Abs(s.LinuxSharePre-0.022) > 0.015 {
		t.Errorf("Linux pre-2018 = %.3f, paper 0.022", s.LinuxSharePre)
	}
	if math.Abs(s.LinuxSharePost-0.363) > 0.05 {
		t.Errorf("Linux post-2018 = %.3f, paper 0.363", s.LinuxSharePost)
	}
	if math.Abs(s.AMDSharePre-0.130) > 0.025 {
		t.Errorf("AMD pre-2018 = %.3f, paper 0.130", s.AMDSharePre)
	}
	if math.Abs(s.AMDSharePost-0.313) > 0.04 {
		t.Errorf("AMD post-2018 = %.3f, paper 0.313", s.AMDSharePost)
	}
}

func TestPowerGrowthS3(t *testing.T) {
	ds := dataset(t)
	growth := PowerGrowth(ds.Comparable)
	byLoad := map[int]GrowthFactor{}
	for _, g := range growth {
		byLoad[g.Load] = g
	}
	full := byLoad[100]
	// Paper: 119.0 W → 303.3 W, ×2.55.
	if full.EarlyMean < 95 || full.EarlyMean > 145 {
		t.Errorf("early full-load W/socket = %.1f, paper 119.0", full.EarlyMean)
	}
	if full.LateMean < 255 || full.LateMean > 355 {
		t.Errorf("late full-load W/socket = %.1f, paper 303.3", full.LateMean)
	}
	if full.Factor < 2.1 || full.Factor > 3.0 {
		t.Errorf("full-load growth ×%.2f, paper ×2.55", full.Factor)
	}
	// Paper: ×2.2 at 70 %, ×1.8 at 20 %; the shape constraint is
	// factor(20) < factor(70) < factor(100), all well above 1.
	f70, f20 := byLoad[70].Factor, byLoad[20].Factor
	if !(f20 < f70 && f70 <= full.Factor*1.02) {
		t.Errorf("growth ordering broken: 20%%=×%.2f 70%%=×%.2f 100%%=×%.2f",
			f20, f70, full.Factor)
	}
	if f70 < 1.7 || f70 > 2.7 {
		t.Errorf("70%% growth ×%.2f, paper ×2.2", f70)
	}
	if f20 < 1.3 || f20 > 2.3 {
		t.Errorf("20%% growth ×%.2f, paper ×1.8", f20)
	}
}

func TestTopEfficientS4(t *testing.T) {
	ds := dataset(t)
	top := TopEfficient(ds.Comparable, 100)
	if top.N != 100 {
		t.Fatalf("N = %d", top.N)
	}
	amd := top.ByVendor["AMD"]
	// Paper: 98 of 100. AMD must dominate overwhelmingly.
	if amd < 90 {
		t.Errorf("top-100 AMD count = %d, paper 98", amd)
	}
	if amd == 100 {
		t.Log("note: paper has 2 Intel runs in the top 100; corpus has 0")
	}
}

func TestIdleFractionHistoryS5(t *testing.T) {
	ds := dataset(t)
	s := IdleFractionHistory(ds.Comparable, 5)
	if s.FirstYear > 2007 {
		t.Errorf("first populated year = %d", s.FirstYear)
	}
	if math.Abs(s.FirstYearMean-0.701) > 0.06 {
		t.Errorf("first-year idle fraction = %.3f, paper 0.701", s.FirstYearMean)
	}
	if s.MinYear < 2015 || s.MinYear > 2019 {
		t.Errorf("minimum year = %d, paper 2017", s.MinYear)
	}
	if math.Abs(s.MinYearMean-0.157) > 0.035 {
		t.Errorf("minimum idle fraction = %.3f, paper 0.157", s.MinYearMean)
	}
	if s.LastYear != 2024 {
		t.Errorf("last year = %d", s.LastYear)
	}
	if math.Abs(s.LastYearMean-0.257) > 0.05 {
		t.Errorf("2024 idle fraction = %.3f, paper 0.257", s.LastYearMean)
	}
	if s.LastYearMean <= s.MinYearMean+0.04 {
		t.Errorf("idle regression missing: min %.3f vs last %.3f",
			s.MinYearMean, s.LastYearMean)
	}
}

func TestFig2Trend(t *testing.T) {
	ds := dataset(t)
	fig := Fig2PowerPerSocket(ds.Comparable)
	if len(fig.Points) != 676 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	first, last := fig.Yearly[0], fig.Yearly[len(fig.Yearly)-1]
	if last.Mean < 2*first.Mean {
		t.Errorf("per-socket power should grow strongly: %.0f → %.0f W",
			first.Mean, last.Mean)
	}
}

func TestFig3Trend(t *testing.T) {
	ds := dataset(t)
	fig := Fig3OverallEfficiency(ds.Comparable)
	yearly := map[int]YearlyStat{}
	for _, ys := range fig.Yearly {
		yearly[ys.Year] = ys
	}
	// Orders of magnitude: hundreds early, tens of thousands late.
	if early := yearly[2007].Mean; early < 150 || early > 900 {
		t.Errorf("2007 mean overall eff = %.0f, want a few hundred", early)
	}
	late := yearly[2023].Mean
	if late < 10000 || late > 40000 {
		t.Errorf("2023 mean overall eff = %.0f, want tens of thousands", late)
	}
	// AMD leads in recent years (Fig 3's visual finding).
	var amdSum, amdN, intelSum, intelN float64
	for _, p := range fig.Points {
		if p.Frac < 2022 {
			continue
		}
		switch p.Vendor {
		case "AMD":
			amdSum += p.Value
			amdN++
		case "Intel":
			intelSum += p.Value
			intelN++
		}
	}
	if amdN == 0 || intelN == 0 {
		t.Fatal("missing recent vendor data")
	}
	if amdSum/amdN < 1.4*(intelSum/intelN) {
		t.Errorf("recent AMD mean eff %.0f not clearly above Intel %.0f",
			amdSum/amdN, intelSum/intelN)
	}
}

func TestFig4RelativeEfficiency(t *testing.T) {
	ds := dataset(t)
	cells := Fig4RelativeEfficiency(ds.Comparable)
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	get := func(vendor string, year, load int) (Fig4Cell, bool) {
		for _, c := range cells {
			if c.Vendor == vendor && c.Year == year && c.Load == load {
				return c, true
			}
		}
		return Fig4Cell{}, false
	}
	// Early years: clearly below 1 at partial load.
	if c, ok := get("Intel", 2007, 60); ok {
		if c.Box.Median > 0.85 {
			t.Errorf("Intel 2007 @60%% median = %.3f, want « 1", c.Box.Median)
		}
	} else {
		t.Error("missing Intel 2007 @60% cell")
	}
	// Intel 2014: above 1 at ≥70 %.
	for _, load := range []int{70, 80, 90} {
		c, ok := get("Intel", 2014, load)
		if !ok {
			t.Errorf("missing Intel 2014 @%d%% cell", load)
			continue
		}
		if c.Box.Median < 1.0 {
			t.Errorf("Intel 2014 @%d%% median = %.3f, paper > 1", load, c.Box.Median)
		}
	}
	// Intel 2023: regressed to ≈1.
	if c, ok := get("Intel", 2023, 80); ok {
		if c.Box.Median < 0.85 || c.Box.Median > 1.1 {
			t.Errorf("Intel 2023 @80%% median = %.3f, paper ≈1", c.Box.Median)
		}
	} else {
		t.Error("missing Intel 2023 @80% cell")
	}
	// AMD approaches 1 around 2021 from below.
	if c, ok := get("AMD", 2019, 70); ok {
		if c.Box.Median >= 0.99 {
			t.Errorf("AMD 2019 @70%% median = %.3f, want < 0.99", c.Box.Median)
		}
	}
	if c, ok := get("AMD", 2022, 70); ok {
		if c.Box.Median < 0.9 || c.Box.Median > 1.12 {
			t.Errorf("AMD 2022 @70%% median = %.3f, want ≈1", c.Box.Median)
		}
	} else {
		t.Error("missing AMD 2022 @70% cell")
	}
}

func TestFig6QuotientTrend(t *testing.T) {
	ds := dataset(t)
	fig := Fig6IdleQuotient(ds.Comparable)
	yearly := map[int]YearlyStat{}
	for _, ys := range fig.Yearly {
		yearly[ys.Year] = ys
	}
	early := yearly[2006].Mean
	if early > 1.2 {
		t.Errorf("2006 quotient mean = %.2f, want ≈1", early)
	}
	late := yearly[2023].Mean
	if late < 1.25 {
		t.Errorf("2023 quotient mean = %.2f, want clearly above 1", late)
	}
	if late <= early {
		t.Error("quotient trend should rise")
	}
}

func TestFig1Shares(t *testing.T) {
	ds := dataset(t)
	rows := Fig1Shares(ds.Parsed)
	total := 0
	for _, row := range rows {
		total += row.Count
		// Shares sum to ≈1 in every panel.
		for name, m := range map[string]map[string]float64{
			"os": row.OS, "vendor": row.Vendor,
			"sockets": row.Sockets, "nodes": row.Nodes,
		} {
			var sum float64
			for _, v := range m {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("year %d %s shares sum to %v", row.Year, name, sum)
			}
		}
	}
	if total != 960 {
		t.Errorf("Fig1 covers %d runs, want 960", total)
	}
	// Windows dominates before 2018 (>97 % per the paper).
	for _, row := range rows {
		if row.Year >= 2013 && row.Year <= 2016 && row.Vendor["AMD"] > 0 {
			t.Errorf("year %d should have no AMD runs (share %.2f)",
				row.Year, row.Vendor["AMD"])
		}
	}
}

func TestRecentFeaturesS6(t *testing.T) {
	ds := dataset(t)
	s := RecentFeatures(ds.Comparable, 2021)
	if s.AMD.N == 0 || s.Intel.N == 0 {
		t.Fatal("empty vendor bins")
	}
	// Paper: AMD 85.8 vs Intel 39.5 mean cores.
	if math.Abs(s.AMD.MeanCores-85.8) > 30 {
		t.Errorf("AMD mean cores = %.1f, paper 85.8", s.AMD.MeanCores)
	}
	if math.Abs(s.Intel.MeanCores-39.5) > 18 {
		t.Errorf("Intel mean cores = %.1f, paper 39.5", s.Intel.MeanCores)
	}
	if s.AMD.MeanCores < 1.6*s.Intel.MeanCores {
		t.Errorf("AMD core advantage %.1f vs %.1f too small",
			s.AMD.MeanCores, s.Intel.MeanCores)
	}
	// Paper: both ≈2.3 GHz mean; Intel spread larger (0.5 vs 0.3).
	if math.Abs(s.AMD.MeanGHz-2.3) > 0.35 || math.Abs(s.Intel.MeanGHz-2.3) > 0.35 {
		t.Errorf("mean GHz AMD %.2f / Intel %.2f, paper ≈2.3 both",
			s.AMD.MeanGHz, s.Intel.MeanGHz)
	}
	// Correlation matrix is complete and bounded.
	if len(s.Corr) != len(s.CorrNames) {
		t.Fatal("corr matrix shape")
	}
	for i := range s.Corr {
		for j := range s.Corr[i] {
			v := s.Corr[i][j]
			if !math.IsNaN(v) && (v < -1 || v > 1) {
				t.Errorf("corr[%d][%d] = %v", i, j, v)
			}
		}
		if s.Corr[i][i] != 1 {
			t.Errorf("diagonal not 1 at %d", i)
		}
	}
}

func TestRunsFrameShape(t *testing.T) {
	ds := dataset(t)
	f := RunsFrame(ds.Comparable)
	if f.Len() != 676 {
		t.Fatalf("frame rows = %d", f.Len())
	}
	for _, col := range []string{
		"id", "vendor", "year", "sockets", "overall_eff", "idle_frac",
		"idle_quot", "w_socket_100", "releff_70",
	} {
		if !f.Has(col) {
			t.Errorf("missing column %q", col)
		}
	}
	// Spot-check one derived column against the model.
	overall := f.MustFloats("overall_eff")
	if math.Abs(overall[0]-ds.Comparable[0].OverallOpsPerWatt()) > 1e-9 {
		t.Error("overall_eff column mismatches model computation")
	}
}

func TestFunnelString(t *testing.T) {
	ds := dataset(t)
	s := ds.Funnel.String()
	for _, want := range []string{"1017", "960", "676", "not accepted"} {
		if !contains(s, want) {
			t.Errorf("funnel report missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
