package analysis

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// ReasonCount is one row of the filter funnel.
type ReasonCount struct {
	Reason model.RejectReason
	Count  int
}

// Funnel records how the corpus shrinks through the two filter stages,
// mirroring the paper's Section II accounting.
type Funnel struct {
	Raw        int // downloaded result files (paper: 1017)
	Parsed     int // after parse-consistency checks (paper: 960)
	Comparable int // after comparability filters (paper: 676)
	// ParseStage and ComparabilityStage list per-reason removals in
	// pipeline order.
	ParseStage         []ReasonCount
	ComparabilityStage []ReasonCount
}

// String renders the funnel as a small report table.
func (f Funnel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "raw results:            %4d\n", f.Raw)
	for _, rc := range f.ParseStage {
		fmt.Fprintf(&b, "  - %-38s %4d\n", rc.Reason, rc.Count)
	}
	fmt.Fprintf(&b, "successfully parsed:    %4d\n", f.Parsed)
	for _, rc := range f.ComparabilityStage {
		fmt.Fprintf(&b, "  - %-38s %4d\n", rc.Reason, rc.Count)
	}
	fmt.Fprintf(&b, "comparable (analysed):  %4d\n", f.Comparable)
	return b.String()
}

// Dataset holds the corpus at each pipeline stage.
type Dataset struct {
	// Raw is every run handed in.
	Raw []*model.Run
	// Parsed is Raw minus parse-consistency rejects (Figure 1 uses this).
	Parsed []*model.Run
	// Comparable is Parsed minus comparability rejects — the 676-run set
	// every trend analysis uses.
	Comparable []*model.Run
	// Funnel is the removal accounting.
	Funnel Funnel
	// Workers bounds the internal parallelism of analyses computed from
	// this dataset (0 = GOMAXPROCS). The engine sets it from its own
	// worker option, so a caller capping the engine caps the analyses
	// too.
	Workers int
}

// BuildDataset classifies every run and splits the corpus into the
// pipeline stages. It is the batch form of DatasetBuilder.
func BuildDataset(runs []*model.Run) *Dataset {
	b := NewDatasetBuilder()
	for _, r := range runs {
		b.Add(r)
	}
	return b.Dataset()
}
