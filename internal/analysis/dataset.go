package analysis

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// ReasonCount is one row of the filter funnel.
type ReasonCount struct {
	Reason model.RejectReason
	Count  int
}

// Funnel records how the corpus shrinks through the two filter stages,
// mirroring the paper's Section II accounting.
type Funnel struct {
	Raw        int // downloaded result files (paper: 1017)
	Parsed     int // after parse-consistency checks (paper: 960)
	Comparable int // after comparability filters (paper: 676)
	// ParseStage and ComparabilityStage list per-reason removals in
	// pipeline order.
	ParseStage         []ReasonCount
	ComparabilityStage []ReasonCount
}

// String renders the funnel as a small report table.
func (f Funnel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "raw results:            %4d\n", f.Raw)
	for _, rc := range f.ParseStage {
		fmt.Fprintf(&b, "  - %-38s %4d\n", rc.Reason, rc.Count)
	}
	fmt.Fprintf(&b, "successfully parsed:    %4d\n", f.Parsed)
	for _, rc := range f.ComparabilityStage {
		fmt.Fprintf(&b, "  - %-38s %4d\n", rc.Reason, rc.Count)
	}
	fmt.Fprintf(&b, "comparable (analysed):  %4d\n", f.Comparable)
	return b.String()
}

// Dataset holds the corpus at each pipeline stage.
type Dataset struct {
	// Raw is every run handed in.
	Raw []*model.Run
	// Parsed is Raw minus parse-consistency rejects (Figure 1 uses this).
	Parsed []*model.Run
	// Comparable is Parsed minus comparability rejects — the 676-run set
	// every trend analysis uses.
	Comparable []*model.Run
	// Funnel is the removal accounting.
	Funnel Funnel
}

// BuildDataset classifies every run and splits the corpus into the
// pipeline stages.
func BuildDataset(runs []*model.Run) *Dataset {
	ds := &Dataset{Raw: runs}
	parseCounts := map[model.RejectReason]int{}
	compCounts := map[model.RejectReason]int{}
	for _, r := range runs {
		if rr := model.CheckParseConsistency(r); rr != model.RejectNone {
			parseCounts[rr]++
			continue
		}
		ds.Parsed = append(ds.Parsed, r)
		if rr := model.CheckComparability(r); rr != model.RejectNone {
			compCounts[rr]++
			continue
		}
		ds.Comparable = append(ds.Comparable, r)
	}
	ds.Funnel = Funnel{
		Raw:        len(runs),
		Parsed:     len(ds.Parsed),
		Comparable: len(ds.Comparable),
	}
	for _, rr := range model.ParseReasons() {
		ds.Funnel.ParseStage = append(ds.Funnel.ParseStage,
			ReasonCount{Reason: rr, Count: parseCounts[rr]})
	}
	for _, rr := range model.ComparabilityReasons() {
		ds.Funnel.ComparabilityStage = append(ds.Funnel.ComparabilityStage,
			ReasonCount{Reason: rr, Count: compCounts[rr]})
	}
	return ds
}
