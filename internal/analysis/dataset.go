package analysis

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// ReasonCount is one row of the filter funnel.
type ReasonCount struct {
	Reason model.RejectReason
	Count  int
}

// Funnel records how the corpus shrinks through the two filter stages,
// mirroring the paper's Section II accounting.
type Funnel struct {
	Raw        int // downloaded result files (paper: 1017)
	Parsed     int // after parse-consistency checks (paper: 960)
	Comparable int // after comparability filters (paper: 676)
	// ParseStage and ComparabilityStage list per-reason removals in
	// pipeline order.
	ParseStage         []ReasonCount
	ComparabilityStage []ReasonCount
}

// String renders the funnel as a small report table.
func (f Funnel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "raw results:            %4d\n", f.Raw)
	for _, rc := range f.ParseStage {
		fmt.Fprintf(&b, "  - %-38s %4d\n", rc.Reason, rc.Count)
	}
	fmt.Fprintf(&b, "successfully parsed:    %4d\n", f.Parsed)
	for _, rc := range f.ComparabilityStage {
		fmt.Fprintf(&b, "  - %-38s %4d\n", rc.Reason, rc.Count)
	}
	fmt.Fprintf(&b, "comparable (analysed):  %4d\n", f.Comparable)
	return b.String()
}

// KernelEvent is one progress event emitted by a compute kernel — a
// k-means Lloyd iteration, a HAC merge batch — while an analysis
// computes. Events carry deterministic facts about the computation
// (counts, indices, distances), never timings: the kernel's output must
// stay a pure function of (dataset, params), so any clock reads happen
// in the observer that receives the event, outside the registered
// analysis's call graph.
type KernelEvent struct {
	// Kernel names the emitting kernel ("kmeans", "hac").
	Kernel string
	// Event names the step kind ("iteration", "merge-batch").
	Event string
	// Index is the 1-based step number within the kernel run.
	Index int
	// Moved counts the labels reassigned this step (k-means).
	Moved int
	// Merges counts the dendrogram merges in this batch (HAC).
	Merges int
	// MaxDist is the largest merge distance in this batch (HAC).
	MaxDist float64
	// Converged reports whether the kernel stabilized at this step
	// (k-means: no label moved).
	Converged bool
}

// KernelObserver receives kernel progress events. Implementations must
// be safe for concurrent use (kernels may run under a worker pool) and
// must not influence the computation — observers are for tracing and
// metrics, and the determinism contract holds with or without one.
type KernelObserver func(KernelEvent)

// Dataset holds the corpus at each pipeline stage.
type Dataset struct {
	// Raw is every run handed in.
	Raw []*model.Run
	// Parsed is Raw minus parse-consistency rejects (Figure 1 uses this).
	Parsed []*model.Run
	// Comparable is Parsed minus comparability rejects — the 676-run set
	// every trend analysis uses.
	Comparable []*model.Run
	// Funnel is the removal accounting.
	Funnel Funnel
	// Workers bounds the internal parallelism of analyses computed from
	// this dataset (0 = GOMAXPROCS). The engine sets it from its own
	// worker option, so a caller capping the engine caps the analyses
	// too.
	Workers int
	// Kernel, when non-nil, receives kernel progress events from
	// analyses computed over this dataset. The engine threads a
	// per-request observer in via WithKernel; analyses only ever invoke
	// the callback (a dynamic call), keeping their own call graphs free
	// of clocks and I/O.
	Kernel KernelObserver

	// id anchors the dataset's cache identity across the shallow copies
	// WithKernel makes; see CacheKey.
	id *datasetID
	// prev is the cache identity of the snapshot this dataset extends
	// (nil for a first snapshot or a literally constructed dataset);
	// see PrevCacheKey.
	prev *datasetID
}

type datasetID struct{ _ byte }

// CacheKey returns an opaque comparable identity for dataset-keyed
// caches: every WithKernel copy of a builder-produced dataset shares
// its original's key, so attaching an observer never splits a cache. A
// dataset constructed literally (tests, ad-hoc callers) has no id and
// is its own key.
func (d *Dataset) CacheKey() any {
	if d.id == nil {
		return d
	}
	return d.id
}

// PrevCacheKey returns the cache identity of the snapshot this dataset
// was appended onto, or nil when there is none. Warm-startable kernels
// (mini-batch k-means) use it to find state computed against the
// previous corpus generation.
func (d *Dataset) PrevCacheKey() any {
	if d.prev == nil {
		return nil
	}
	return d.prev
}

// WithKernel returns a shallow copy of the dataset with the kernel
// observer attached — same corpus slices, same cache identity. The
// receiver is never mutated: datasets are shared across concurrent
// analyses, and the observer is per-request state.
func (d *Dataset) WithKernel(obs KernelObserver) *Dataset {
	c := *d
	c.Kernel = obs
	return &c
}

// BuildDataset classifies every run and splits the corpus into the
// pipeline stages. It is the batch form of DatasetBuilder.
func BuildDataset(runs []*model.Run) *Dataset {
	b := NewDatasetBuilder()
	for _, r := range runs {
		b.Add(r)
	}
	return b.Dataset()
}
