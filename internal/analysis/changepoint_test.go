package analysis

import (
	"testing"

	"repro/internal/model"
)

func TestIdleFractionChangepoint(t *testing.T) {
	ds := dataset(t)
	cf, err := IdleFractionChangepoint(ds.Comparable, 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !cf.Significant {
		t.Errorf("idle history has no significant changepoint: %+v", cf)
	}
	// The V-shaped fall/rise around the 2017 minimum puts the Pettitt
	// break somewhere in the steep-descent-to-plateau transition.
	if cf.Year < 2008 || cf.Year > 2018 {
		t.Errorf("changepoint year %d outside the plausible window", cf.Year)
	}
}

func TestMetricChangepointErrors(t *testing.T) {
	ds := dataset(t)
	if _, err := MetricChangepoint(ds.Comparable[:4], "x",
		(*model.Run).IdleFraction, 1, 0.05); err == nil {
		t.Error("too few yearly bins should error")
	}
}

func TestYearlyMeansByVendor(t *testing.T) {
	ds := dataset(t)
	amd := YearlyMeansByVendor(ds.Comparable, model.VendorAMD, (*model.Run).OverallOpsPerWatt)
	intel := YearlyMeansByVendor(ds.Comparable, model.VendorIntel, (*model.Run).OverallOpsPerWatt)
	if len(amd) == 0 || len(intel) == 0 {
		t.Fatal("empty vendor series")
	}
	// No AMD bins in the 2013–2016 gap.
	for _, ys := range amd {
		if ys.Year >= 2013 && ys.Year <= 2016 {
			t.Errorf("AMD bin in the EPYC gap: %d", ys.Year)
		}
	}
	// Recent AMD beats recent Intel (Figure 3).
	last := func(series []YearlyStat) YearlyStat { return series[len(series)-1] }
	if last(amd).Mean <= last(intel).Mean {
		t.Errorf("recent AMD %v should exceed Intel %v",
			last(amd).Mean, last(intel).Mean)
	}
	// Vendor bins partition the pooled bins.
	pooled := YearlyMeans(ds.Comparable, (*model.Run).OverallOpsPerWatt)
	total := 0
	for _, ys := range pooled {
		total += ys.N
	}
	vtotal := 0
	for _, ys := range append(append([]YearlyStat(nil), amd...), intel...) {
		vtotal += ys.N
	}
	if total != vtotal {
		t.Errorf("vendor bins cover %d runs, pooled %d", vtotal, total)
	}
}

func TestMacOSPresence(t *testing.T) {
	ds := dataset(t)
	rows := Fig1Shares(ds.Parsed)
	sawMac := false
	for _, row := range rows {
		if row.OS["macOS"] > 0 {
			sawMac = true
			if row.Year > 2010 {
				t.Errorf("macOS share in %d; Xserve era only", row.Year)
			}
		}
	}
	if !sawMac {
		t.Error("Figure 1 legend includes macOS but the corpus has none")
	}
}
