package analysis

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) < 16 {
		t.Fatalf("only %d analyses registered: %v", len(names), names)
	}
	// Registration order follows the paper's presentation.
	if names[0] != "funnel" {
		t.Errorf("first registered analysis = %q, want funnel", names[0])
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"submissions", "growth", "top100", "idlehistory", "features",
		"trends", "ep", "confound", "changepoint"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("Lookup(%q) missing", want)
		}
	}
	sorted := SortedNames()
	if len(sorted) != len(names) {
		t.Fatalf("SortedNames lost entries: %d vs %d", len(sorted), len(names))
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatalf("SortedNames not sorted at %d: %v", i, sorted)
		}
	}
}

func TestRegistryLookupRuns(t *testing.T) {
	runs, err := synth.Generate(synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds := BuildDataset(runs)
	reg, ok := Lookup("fig3")
	if !ok {
		t.Fatal("fig3 not registered")
	}
	if !strings.Contains(reg.Description, "efficiency") {
		t.Errorf("description = %q", reg.Description)
	}
	v, err := reg.Func(ds, reg.Params.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	fig, ok := v.(TrendFigure)
	if !ok {
		t.Fatalf("fig3 returned %T", v)
	}
	if len(fig.Points) == 0 || len(fig.Yearly) == 0 {
		t.Error("fig3 returned an empty figure")
	}
}

func TestRegisterValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("duplicate", func() {
		Register("fig3", "dup", func(*Dataset) (any, error) { return nil, nil })
	})
	expectPanic("empty name", func() {
		Register("", "x", func(*Dataset) (any, error) { return nil, nil })
	})
	expectPanic("nil func", func() {
		Register("nilfunc", "x", nil)
	})
}

// TestDatasetBuilderMatchesBatch: adding runs one at a time must
// reproduce BuildDataset exactly, whatever order runs arrive in.
func TestDatasetBuilderMatchesBatch(t *testing.T) {
	runs, err := synth.Generate(synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	batch := BuildDataset(runs)

	b := NewDatasetBuilder()
	for i, r := range runs {
		if got, want := b.Len(), i; got != want {
			t.Fatalf("Len = %d before adding run %d", got, want)
		}
		b.Add(r)
	}
	incr := b.Dataset()

	if incr.Funnel.String() != batch.Funnel.String() {
		t.Errorf("funnels differ:\n%s\nvs\n%s", incr.Funnel, batch.Funnel)
	}
	if len(incr.Raw) != len(batch.Raw) ||
		len(incr.Parsed) != len(batch.Parsed) ||
		len(incr.Comparable) != len(batch.Comparable) {
		t.Errorf("stage sizes differ: %d/%d/%d vs %d/%d/%d",
			len(incr.Raw), len(incr.Parsed), len(incr.Comparable),
			len(batch.Raw), len(batch.Parsed), len(batch.Comparable))
	}
	for i := range incr.Comparable {
		if incr.Comparable[i] != batch.Comparable[i] {
			t.Fatalf("comparable order differs at %d", i)
		}
	}
	// The builder's verdicts agree with the funnel accounting.
	b2 := NewDatasetBuilder()
	rejects := 0
	for _, r := range runs {
		if b2.Add(r) != 0 { // model.RejectNone
			rejects++
		}
	}
	if want := len(runs) - len(batch.Comparable); rejects != want {
		t.Errorf("Add reported %d rejects, funnel says %d", rejects, want)
	}
}
