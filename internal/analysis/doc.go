// Package analysis implements the paper's longitudinal study: the
// two-stage filter funnel (Section II), the per-figure analyses
// (Figures 1–6), and the in-text statistics (submission rates, vendor
// and OS shares, power growth factors, top-efficiency ranking, and the
// post-2021 feature comparison).
//
// Every public function takes parsed model.Run slices (usually via
// Dataset) and returns plain structs or frame.Frame tables that the
// plot package renders and the bench harness prints, so the same code
// path regenerates each table and figure of the paper.
package analysis
