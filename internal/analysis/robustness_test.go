package analysis

import (
	"testing"

	"repro/internal/synth"
)

// TestStatisticsRobustAcrossSeeds guards against over-fitting to the
// pinned default seed: the qualitative findings must hold for any seed,
// with wider tolerances than the calibration tests use.
func TestStatisticsRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("generates several corpora")
	}
	for _, seed := range []int64{2, 5, 23, 71, 1234} {
		opt := synth.DefaultOptions()
		opt.Seed = seed
		runs, err := synth.Generate(opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ds := BuildDataset(runs)
		// Funnel counts are plan-driven, not seed-driven: always exact.
		if ds.Funnel.Raw != 1017 || ds.Funnel.Parsed != 960 || ds.Funnel.Comparable != 676 {
			t.Errorf("seed %d: funnel %d/%d/%d", seed,
				ds.Funnel.Raw, ds.Funnel.Parsed, ds.Funnel.Comparable)
		}
		// AMD dominates the efficiency ranking.
		top := TopEfficient(ds.Comparable, 100)
		if top.ByVendor["AMD"] < 70 {
			t.Errorf("seed %d: top-100 AMD = %d", seed, top.ByVendor["AMD"])
		}
		// Idle fraction: high start, minimum mid-2010s, regression after.
		s5 := IdleFractionHistory(ds.Comparable, 5)
		if s5.FirstYearMean < 0.55 || s5.FirstYearMean > 0.85 {
			t.Errorf("seed %d: first-year idle %.3f", seed, s5.FirstYearMean)
		}
		if s5.MinYear < 2014 || s5.MinYear > 2020 {
			t.Errorf("seed %d: idle minimum in %d", seed, s5.MinYear)
		}
		if s5.LastYearMean < s5.MinYearMean {
			t.Errorf("seed %d: no idle regression", seed)
		}
		// Power per socket grows at least 1.8×.
		for _, g := range PowerGrowth(ds.Comparable) {
			if g.Load == 100 && g.Factor < 1.8 {
				t.Errorf("seed %d: full-load growth ×%.2f", seed, g.Factor)
			}
		}
		// Efficiency rises by orders of magnitude.
		eff := Fig3OverallEfficiency(ds.Comparable)
		first, last := eff.Yearly[0], eff.Yearly[len(eff.Yearly)-1]
		if last.Mean < 20*first.Mean {
			t.Errorf("seed %d: efficiency grew only %.0f→%.0f",
				seed, first.Mean, last.Mean)
		}
	}
}
