package analysis

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func TestPaperTrends(t *testing.T) {
	ds := dataset(t)
	// α = 0.10: the headline trends (power, efficiency, idle) are
	// significant at any reasonable level; the proportionality
	// convergence is marginal (p ≈ 0.06 on 20 yearly bins) — fittingly,
	// since the paper itself hedges that this trend "is not universal".
	trends, err := PaperTrends(ds.Comparable, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TrendAssessment{}
	for _, ta := range trends {
		byName[ta.Metric] = ta
	}
	expect := map[string]stats.TrendDirection{
		"power per socket @100% (full range)":     stats.TrendIncreasing,
		"overall ssj_ops/W (full range)":          stats.TrendIncreasing,
		"idle fraction 2005–2017":                 stats.TrendDecreasing,
		"idle fraction 2017–2024":                 stats.TrendIncreasing,
		"extrapolated idle quotient (full range)": stats.TrendIncreasing,
		"energy proportionality score 2005–2017":  stats.TrendIncreasing,
		"|1 − rel eff @70%| (full range)":         stats.TrendDecreasing,
	}
	for name, wantDir := range expect {
		ta, ok := byName[name]
		if !ok {
			t.Errorf("missing trend %q", name)
			continue
		}
		if ta.MK.Direction != wantDir {
			t.Errorf("%s: Mann-Kendall %v (p=%.4f), want %v",
				name, ta.MK.Direction, ta.MK.P, wantDir)
		}
		// Sen slope sign agrees with the test direction.
		if wantDir == stats.TrendIncreasing && ta.SenSlopePerYear <= 0 {
			t.Errorf("%s: Sen slope %v, want > 0", name, ta.SenSlopePerYear)
		}
		if wantDir == stats.TrendDecreasing && ta.SenSlopePerYear >= 0 {
			t.Errorf("%s: Sen slope %v, want < 0", name, ta.SenSlopePerYear)
		}
	}
	// Magnitude sanity: power/socket rises by several W per year.
	if ps := byName["power per socket @100% (full range)"]; ps.SenSlopePerYear < 2 {
		t.Errorf("power slope %.2f W/year implausibly flat", ps.SenSlopePerYear)
	}
}

func TestAssessTrendErrors(t *testing.T) {
	ds := dataset(t)
	if _, err := AssessTrend(ds.Comparable[:3], "x", (*model.Run).IdleFraction, 0, 0, 0.05); err == nil {
		t.Error("too few yearly bins should error")
	}
	if _, err := AssessTrend(ds.Comparable, "x", (*model.Run).IdleFraction, 0, 0, 7); err == nil {
		t.Error("bad alpha should error")
	}
}

func TestEPScore(t *testing.T) {
	mk := func(rel func(u float64) float64) *model.Run {
		r := &model.Run{}
		for _, load := range model.StandardLoads() {
			u := float64(load) / 100
			r.Points = append(r.Points, model.LoadPoint{
				TargetLoad: load, ActualOps: 1000 * u, AvgPower: 500 * rel(u),
			})
		}
		return r
	}
	// Perfectly proportional: EP = 1.
	prop := mk(func(u float64) float64 { return u })
	if got := EPScore(prop); math.Abs(got-1) > 1e-9 {
		t.Errorf("proportional EP = %v, want 1", got)
	}
	// Constant power: EP = 0.
	flat := mk(func(u float64) float64 { return 1 })
	if got := EPScore(flat); math.Abs(got) > 1e-9 {
		t.Errorf("flat EP = %v, want 0", got)
	}
	// Half idle intercept: EP = 0.5.
	half := mk(func(u float64) float64 { return 0.5 + 0.5*u })
	if got := EPScore(half); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half-intercept EP = %v, want 0.5", got)
	}
	// Degenerate runs.
	if !math.IsNaN(EPScore(&model.Run{})) {
		t.Error("empty run should be NaN")
	}
}

func TestEPByYearTrend(t *testing.T) {
	ds := dataset(t)
	yearly := EPByYear(ds.Comparable)
	if len(yearly) < 10 {
		t.Fatalf("bins = %d", len(yearly))
	}
	first, last := yearly[0], yearly[len(yearly)-1]
	// The paper's conclusion: a positive proportionality trend.
	if last.Mean < first.Mean+0.2 {
		t.Errorf("EP barely improved: %.3f (%d) → %.3f (%d)",
			first.Mean, first.Year, last.Mean, last.Year)
	}
	// Recent systems are near-proportional but not perfect.
	if last.Mean < 0.6 || last.Mean > 1.1 {
		t.Errorf("recent EP = %.3f, implausible", last.Mean)
	}
}

func TestConfoundingScan(t *testing.T) {
	ds := dataset(t)
	findings := ConfoundingScan(ds.Comparable, 2021)
	if len(findings) != 21 { // C(7,2)
		t.Fatalf("findings = %d, want 21", len(findings))
	}
	get := func(a, b string) ConfoundFinding {
		for _, f := range findings {
			if (f.FeatureX == a && f.FeatureY == b) || (f.FeatureX == b && f.FeatureY == a) {
				return f
			}
		}
		t.Fatalf("missing pair %s/%s", a, b)
		return ConfoundFinding{}
	}
	// Cores ↔ overall efficiency: strongly positive pooled (AMD has both
	// more cores and higher efficiency).
	ce := get("cores", "overall_eff")
	if math.IsNaN(ce.Pooled) || ce.Pooled < 0.2 {
		t.Errorf("cores↔eff pooled = %v, want clearly positive", ce.Pooled)
	}
	// At least one substantial pooled correlation should be flagged as
	// vendor-confounded — the paper's "inconclusive" verdict.
	any := false
	for _, f := range findings {
		if f.Confounded {
			any = true
			break
		}
	}
	if !any {
		t.Error("no confounded pair found; the Section IV story is lost")
	}
	// Correlations bounded.
	for _, f := range findings {
		for _, v := range []float64{f.Pooled, f.WithinAMD, f.WithinIntel} {
			if !math.IsNaN(v) && (v < -1 || v > 1) {
				t.Errorf("%s/%s: correlation %v out of range", f.FeatureX, f.FeatureY, v)
			}
		}
	}
}
