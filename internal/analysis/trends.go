package analysis

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/model"
	"repro/internal/stats"
)

// TrendAssessment is the statistical verdict on one metric's evolution
// over hardware-availability time: a Mann-Kendall test on the yearly
// means plus a Theil–Sen slope over the per-run scatter.
type TrendAssessment struct {
	Metric string
	// Years covered (first/last yearly bin used).
	FromYear, ToYear int
	MK               stats.MKResult
	// SenSlopePerYear is the robust per-year change of the metric.
	SenSlopePerYear float64
	// Tau is Kendall's τ of (availability date, metric) over runs.
	Tau float64
}

// AssessTrend runs the trend tests for a metric over runs whose
// hardware availability falls in [fromYear, toYear] (0 = unbounded).
func AssessTrend(runs []*model.Run, name string, metric Metric, fromYear, toYear int, alpha float64) (TrendAssessment, error) {
	var sub []*model.Run
	for _, r := range runs {
		y := r.HWAvail.Year
		if (fromYear != 0 && y < fromYear) || (toYear != 0 && y > toYear) {
			continue
		}
		sub = append(sub, r)
	}
	yearly := YearlyMeans(sub, metric)
	if len(yearly) < 3 {
		return TrendAssessment{}, fmt.Errorf("analysis: trend %q has only %d yearly bins", name, len(yearly))
	}
	means := make([]float64, len(yearly))
	for i, ys := range yearly {
		means[i] = ys.Mean
	}
	mk, err := stats.MannKendall(means, alpha)
	if err != nil {
		return TrendAssessment{}, fmt.Errorf("analysis: trend %q: %w", name, err)
	}
	var xs, ys []float64
	for _, r := range sub {
		v := metric(r)
		xs = append(xs, r.HWAvail.Frac())
		ys = append(ys, v)
	}
	slope, err := stats.SenSlope(xs, ys)
	if err != nil {
		return TrendAssessment{}, fmt.Errorf("analysis: trend %q: %w", name, err)
	}
	tau, err := stats.KendallTau(xs, ys)
	if err != nil {
		return TrendAssessment{}, fmt.Errorf("analysis: trend %q: %w", name, err)
	}
	return TrendAssessment{
		Metric:          name,
		FromYear:        yearly[0].Year,
		ToYear:          yearly[len(yearly)-1].Year,
		MK:              mk,
		SenSlopePerYear: slope,
		Tau:             tau,
	}, nil
}

// PaperTrends runs the trend tests backing the paper's conclusions:
// power per socket rising, overall efficiency rising, idle fraction
// falling to 2017 and rising after, and the idle quotient rising.
// The seven tests run concurrently across up to workers goroutines
// (0 = GOMAXPROCS); the registry passes Dataset.Workers through, so an
// engine's worker bound caps this fan-out too.
func PaperTrends(comparable []*model.Run, alpha float64, workers int) ([]TrendAssessment, error) {
	specs := []struct {
		name     string
		metric   Metric
		from, to int
	}{
		{"power per socket @100% (full range)", func(r *model.Run) float64 { return r.PowerPerSocketAt(100) }, 0, 0},
		{"overall ssj_ops/W (full range)", (*model.Run).OverallOpsPerWatt, 0, 0},
		{"idle fraction 2005–2017", (*model.Run).IdleFraction, 0, 2017},
		{"idle fraction 2017–2024", (*model.Run).IdleFraction, 2017, 0},
		{"extrapolated idle quotient (full range)", (*model.Run).ExtrapolatedIdleQuotient, 0, 0},
		// The paper's proportionality conclusion is hedged ("although
		// this trend is not universal"): the EP score rises sharply to
		// the mid-2010s and then drifts, so the EP trend is assessed
		// over its rising era while Figure 4's convergence — the
		// deviation of relative efficiency from 1 at 70 % load — is
		// assessed over the full range.
		{"energy proportionality score 2005–2017", EPScore, 0, 2017},
		{"|1 − rel eff @70%| (full range)", func(r *model.Run) float64 {
			return math.Abs(1 - r.RelativeEfficiencyAt(70))
		}, 0, 0},
	}
	// The specs are independent and their per-run Sen-slope and τ scans
	// are quadratic in corpus size — the single most expensive analysis
	// of a full report — so they run concurrently. Results stay in spec
	// order and the lowest-index error wins, keeping the output and the
	// failure mode deterministic.
	out := make([]TrendAssessment, len(specs))
	errs := make([]error, len(specs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow nodeterminism results and errors are slotted by spec index; completion order cannot reach the output
		go func() {
			defer wg.Done()
			for i := range idx {
				s := specs[i]
				out[i], errs[i] = AssessTrend(comparable, s.name, s.metric, s.from, s.to, alpha)
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
