package analysis

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/stats"
)

// ScatterPoint is one run in a trend figure: x is the hardware
// availability date as a fractional year, y the plotted metric, with the
// vendor/socket legend dimensions the paper uses.
type ScatterPoint struct {
	Frac    float64
	Value   float64
	Vendor  string
	Sockets int
}

// Scatter is the per-run series of Figures 2, 3, 5 and 6.
type Scatter []ScatterPoint

// YearlyStat summarizes one hardware-availability year of a metric.
type YearlyStat struct {
	Year   int
	N      int
	Mean   float64
	Median float64
}

// Metric extracts one value from a run (NaN = not available).
type Metric func(*model.Run) float64

// ScatterOf builds the scatter of a metric over runs, skipping NaNs.
func ScatterOf(runs []*model.Run, metric Metric) Scatter {
	out := make(Scatter, 0, len(runs))
	for _, r := range runs {
		v := metric(r)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, ScatterPoint{
			Frac:    r.HWAvail.Frac(),
			Value:   v,
			Vendor:  r.CPUVendor.String(),
			Sockets: r.SocketsPerNode,
		})
	}
	return out
}

// YearlyMeans bins a metric by hardware-availability year.
func YearlyMeans(runs []*model.Run, metric Metric) []YearlyStat {
	byYear := map[int][]float64{}
	for _, r := range runs {
		v := metric(r)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		byYear[r.HWAvail.Year] = append(byYear[r.HWAvail.Year], v)
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearlyStat, 0, len(years))
	for _, y := range years {
		vs := byYear[y]
		out = append(out, YearlyStat{
			Year:   y,
			N:      len(vs),
			Mean:   stats.Mean(vs),
			Median: stats.Median(vs),
		})
	}
	return out
}

// TrendFigure bundles what Figures 2, 3, 5 and 6 plot.
type TrendFigure struct {
	Name   string
	Points Scatter
	Yearly []YearlyStat
}

func trendFigure(name string, runs []*model.Run, metric Metric) TrendFigure {
	return TrendFigure{
		Name:   name,
		Points: ScatterOf(runs, metric),
		Yearly: YearlyMeans(runs, metric),
	}
}

// Fig2PowerPerSocket is Figure 2: AC power per socket at the 100 %
// interval over hardware availability.
func Fig2PowerPerSocket(comparable []*model.Run) TrendFigure {
	return trendFigure("Figure 2: power per socket at full load (W)",
		comparable, func(r *model.Run) float64 { return r.PowerPerSocketAt(100) })
}

// Fig3OverallEfficiency is Figure 3: overall ssj_ops/W.
func Fig3OverallEfficiency(comparable []*model.Run) TrendFigure {
	return trendFigure("Figure 3: overall ssj_ops/W",
		comparable, (*model.Run).OverallOpsPerWatt)
}

// Fig5IdleFraction is Figure 5: active-idle power over full-load power.
func Fig5IdleFraction(comparable []*model.Run) TrendFigure {
	return trendFigure("Figure 5: idle power / full load power",
		comparable, (*model.Run).IdleFraction)
}

// Fig6IdleQuotient is Figure 6: extrapolated over measured active-idle
// power.
func Fig6IdleQuotient(comparable []*model.Run) TrendFigure {
	return trendFigure("Figure 6: extrapolated idle quotient",
		comparable, (*model.Run).ExtrapolatedIdleQuotient)
}

// Fig4Cell is one box of Figure 4: the distribution of relative
// efficiency for a (vendor, year, load-level) bin.
type Fig4Cell struct {
	Vendor string
	Year   int
	Load   int
	Box    stats.BoxStats
}

// Fig4Loads are the load levels the figure shows.
var Fig4Loads = []int{60, 70, 80, 90}

// Fig4RelativeEfficiency computes Figure 4: relative efficiency at
// 60–90 % load binned by year and CPU vendor. Cells are ordered by
// vendor, then year, then load.
func Fig4RelativeEfficiency(comparable []*model.Run) []Fig4Cell {
	type key struct {
		vendor string
		year   int
		load   int
	}
	byKey := map[key][]float64{}
	for _, r := range comparable {
		for _, load := range Fig4Loads {
			v := r.RelativeEfficiencyAt(load)
			if math.IsNaN(v) {
				continue
			}
			k := key{r.CPUVendor.String(), r.HWAvail.Year, load}
			byKey[k] = append(byKey[k], v)
		}
	}
	keys := make([]key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.vendor != b.vendor {
			return a.vendor < b.vendor
		}
		if a.year != b.year {
			return a.year < b.year
		}
		return a.load < b.load
	})
	out := make([]Fig4Cell, 0, len(keys))
	for _, k := range keys {
		out = append(out, Fig4Cell{
			Vendor: k.vendor, Year: k.year, Load: k.load,
			Box: stats.Box(byKey[k]),
		})
	}
	return out
}

// Fig1Row is one year of Figure 1: the run count and the share of each
// feature value among that year's parsed runs.
type Fig1Row struct {
	Year    int
	Count   int
	OS      map[string]float64 // Windows / Linux / macOS / Other
	Vendor  map[string]float64 // Intel / AMD / Other
	Sockets map[string]float64 // "1" / "2" / ">2"
	Nodes   map[string]float64 // "1" / "2" / ">2"
}

// Fig1Shares computes Figure 1 over the parsed (960-run) corpus.
func Fig1Shares(parsed []*model.Run) []Fig1Row {
	byYear := map[int][]*model.Run{}
	for _, r := range parsed {
		byYear[r.HWAvail.Year] = append(byYear[r.HWAvail.Year], r)
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]Fig1Row, 0, len(years))
	for _, y := range years {
		runs := byYear[y]
		row := Fig1Row{
			Year: y, Count: len(runs),
			OS:      map[string]float64{},
			Vendor:  map[string]float64{},
			Sockets: map[string]float64{},
			Nodes:   map[string]float64{},
		}
		inc := func(m map[string]float64, k string) { m[k] += 1 / float64(len(runs)) }
		for _, r := range runs {
			inc(row.OS, r.OSFamily.String())
			inc(row.Vendor, r.CPUVendor.String())
			inc(row.Sockets, bucket123(r.SocketsPerNode))
			inc(row.Nodes, bucket123(r.Nodes))
		}
		out = append(out, row)
	}
	return out
}

func bucket123(n int) string {
	switch {
	case n <= 1:
		return "1"
	case n == 2:
		return "2"
	default:
		return ">2"
	}
}
