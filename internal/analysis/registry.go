package analysis

import (
	"fmt"
	"sort"
	"sync"
)

// Func is a named parameterized analysis: a derived computation over a
// classified Dataset, configured by a resolved Params bag (always fully
// populated against the registration's Schema — every declared key
// readable, defaults filled in). Results are plain structs
// (TrendFigure, Funnel, …) that the caller renders as text, SVG, or
// JSON.
type Func func(*Dataset, Params) (any, error)

// SimpleFunc is a zero-parameter analysis, the shape every registration
// had before the registry grew typed parameters. Register adapts it.
type SimpleFunc func(*Dataset) (any, error)

// Input classifies which pipeline stage of the corpus an analysis
// reads. It is the granularity of delta-aware memo invalidation: when
// runs are appended, an engine drops exactly the memos whose declared
// input stage gained rows and keeps the rest warm. The zero value
// (InputRaw) is the conservative default — affected by every append.
type Input int8

const (
	// InputRaw marks an analysis that reads every delivered run (the
	// funnel itself). Any append invalidates it.
	InputRaw Input = iota
	// InputParsed marks an analysis over the parse-consistent set;
	// appends rejected at the parse stage leave it untouched.
	InputParsed
	// InputComparable marks an analysis over the comparable set; only
	// appends that survive both filter stages invalidate it.
	InputComparable
	// InputNone marks an analysis that reads no corpus at all (static
	// tables). Appends never invalidate it.
	InputNone
)

// String names the stage for events and error messages.
func (in Input) String() string {
	switch in {
	case InputParsed:
		return "parsed"
	case InputComparable:
		return "comparable"
	case InputNone:
		return "none"
	default:
		return "raw"
	}
}

// RegOption customizes a registration at Register time.
type RegOption func(*Registration)

// Reads declares the pipeline stage the analysis consumes, so appends
// that never reach that stage keep its memos warm; see Input.
func Reads(in Input) RegOption {
	return func(r *Registration) { r.Input = in }
}

// Registration describes one entry of the analysis registry.
type Registration struct {
	Name        string
	Description string
	Func        Func

	// Params declares the analysis's typed parameters (nil = none).
	// Every serving surface resolves raw inputs against it, so the
	// declaration is the only place a knob exists.
	Params Schema

	// Static marks an analysis that does not read the corpus; engines
	// skip ingestion entirely when computing it and pass Func a nil
	// Dataset.
	Static bool

	// Input is the pipeline stage the analysis reads, declared with
	// Reads and consumed by the engine's delta-aware memo invalidation.
	// Static registrations are always InputNone.
	Input Input

	// defaults is the schema's all-default bag, resolved once at
	// registration so by-name requests on hot serving paths don't
	// re-resolve (and re-validate) the schema per call.
	defaults Params
}

// DefaultParams returns the registration's resolved all-default
// parameter bag. Params is read-only, so sharing one bag across every
// caller is safe.
func (r Registration) DefaultParams() Params { return r.defaults }

var registry = struct {
	sync.RWMutex
	byName map[string]Registration
	order  []string
}{byName: map[string]Registration{}}

// Register adds a parameterless analysis to the global registry.
// Engines look analyses up by name (core.Engine.Run("fig3", …)) and
// memoize their results per engine. Register panics on a duplicate
// name: names are package-level API and collisions are programming
// errors, caught at init time.
func Register(name, description string, fn SimpleFunc, opts ...RegOption) {
	if fn == nil {
		panic("analysis: Register requires a func")
	}
	register(Registration{
		Name:        name,
		Description: description,
		Func:        func(ds *Dataset, _ Params) (any, error) { return fn(ds) },
	}, opts...)
}

// RegisterParams adds an analysis with declared typed parameters. The
// schema's defaults must be self-consistent: register resolves them,
// so a registration whose defaults fail their own validation panics at
// init time instead of erroring on the first request.
func RegisterParams(name, description string, schema Schema, fn Func, opts ...RegOption) {
	register(Registration{
		Name:        name,
		Description: description,
		Func:        fn,
		Params:      schema,
	}, opts...)
}

// RegisterStatic adds a named analysis that does not depend on the
// corpus (like the catalog-driven table1): engines compute it without
// ingesting their source at all.
func RegisterStatic(name, description string, fn func() (any, error)) {
	register(Registration{
		Name:        name,
		Description: description,
		Func:        func(*Dataset, Params) (any, error) { return fn() },
		Static:      true,
	})
}

func register(reg Registration, opts ...RegOption) {
	if reg.Name == "" || reg.Func == nil {
		panic("analysis: Register requires a name and a func")
	}
	for _, opt := range opts {
		opt(&reg)
	}
	if reg.Static {
		// A static analysis reads no corpus by definition; a conflicting
		// Reads declaration would silently disable memo retention.
		reg.Input = InputNone
	}
	reg.defaults = reg.Params.Defaults() // panics on self-invalid defaults

	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[reg.Name]; dup {
		panic(fmt.Sprintf("analysis: duplicate registration of %q", reg.Name))
	}
	registry.byName[reg.Name] = reg
	registry.order = append(registry.order, reg.Name)
}

// Lookup finds a registered analysis by name.
func Lookup(name string) (Registration, bool) {
	registry.RLock()
	defer registry.RUnlock()
	reg, ok := registry.byName[name]
	return reg, ok
}

// Names lists every registered analysis in registration order, which
// follows the paper's presentation (funnel, figures, in-text
// statistics, extended analyses).
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// SortedNames lists every registered analysis alphabetically, for error
// messages and documentation.
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}

// The paper's analyses, by name. Parameters (top-100, since-2021,
// minimum bin sizes, α levels) are pinned to the paper's choices so a
// name always means the same computation.
func init() {
	Register("funnel", "Section II filter funnel (1017 → 960 → 676)",
		func(ds *Dataset) (any, error) { return ds.Funnel, nil },
		Reads(InputRaw))
	Register("fig1", "Figure 1: corpus composition by year (OS, vendor, sockets, nodes)",
		func(ds *Dataset) (any, error) { return Fig1Shares(ds.Parsed), nil },
		Reads(InputParsed))
	Register("fig2", "Figure 2: power per socket at full load (W)",
		func(ds *Dataset) (any, error) { return Fig2PowerPerSocket(ds.Comparable), nil },
		Reads(InputComparable))
	Register("fig3", "Figure 3: overall efficiency (ssj_ops/W)",
		func(ds *Dataset) (any, error) { return Fig3OverallEfficiency(ds.Comparable), nil },
		Reads(InputComparable))
	Register("fig4", "Figure 4: relative efficiency at 60-90% load by vendor and year",
		func(ds *Dataset) (any, error) { return Fig4RelativeEfficiency(ds.Comparable), nil },
		Reads(InputComparable))
	Register("fig5", "Figure 5: idle power / full load power",
		func(ds *Dataset) (any, error) { return Fig5IdleFraction(ds.Comparable), nil },
		Reads(InputComparable))
	Register("fig6", "Figure 6: extrapolated idle quotient",
		func(ds *Dataset) (any, error) { return Fig6IdleQuotient(ds.Comparable), nil },
		Reads(InputComparable))
	Register("submissions", "S2: submission rates and OS/vendor share shifts",
		func(ds *Dataset) (any, error) { return SubmissionTrends(ds.Parsed), nil },
		Reads(InputParsed))
	Register("growth", "S3: full-load power growth, early vs late era",
		func(ds *Dataset) (any, error) { return PowerGrowth(ds.Comparable), nil },
		Reads(InputComparable))
	Register("top100", "S4: vendor composition of the 100 most efficient runs",
		func(ds *Dataset) (any, error) { return TopEfficient(ds.Comparable, 100), nil },
		Reads(InputComparable))
	Register("idlehistory", "S5: idle-fraction history (first / minimum / last year)",
		func(ds *Dataset) (any, error) { return IdleFractionHistory(ds.Comparable, 5), nil },
		Reads(InputComparable))
	Register("features", "S6: per-vendor feature comparison since 2021",
		func(ds *Dataset) (any, error) { return RecentFeatures(ds.Comparable, 2021), nil },
		Reads(InputComparable))
	Register("trends", "Mann-Kendall + Theil-Sen trend tests behind the conclusions",
		func(ds *Dataset) (any, error) { return PaperTrends(ds.Comparable, 0.10, ds.Workers) },
		Reads(InputComparable))
	Register("ep", "energy proportionality score by year",
		func(ds *Dataset) (any, error) { return EPByYear(ds.Comparable), nil },
		Reads(InputComparable))
	Register("confound", "pooled vs within-vendor correlations since 2021",
		func(ds *Dataset) (any, error) { return ConfoundingScan(ds.Comparable, 2021), nil },
		Reads(InputComparable))
	Register("changepoint", "Pettitt changepoint of the idle-fraction history",
		func(ds *Dataset) (any, error) { return IdleFractionChangepoint(ds.Comparable, 5, 0.05) },
		Reads(InputComparable))
}
