package analysis

import "repro/internal/model"

// DatasetBuilder assembles a Dataset incrementally, one run at a time,
// so classification can overlap with parsing: a streaming corpus source
// feeds runs into Add while its workers are still reading files, and no
// intermediate []*model.Run has to be materialized first.
//
// A builder is not safe for concurrent use; the streaming sources
// serialize their deliveries before calling Add.
type DatasetBuilder struct {
	ds          Dataset
	parseCounts map[model.RejectReason]int
	compCounts  map[model.RejectReason]int
	// lastSnap is the cache identity of the most recent Snapshot, the
	// lineage link the next Snapshot records as its predecessor.
	lastSnap *datasetID
}

// NewDatasetBuilder returns an empty builder.
func NewDatasetBuilder() *DatasetBuilder {
	return &DatasetBuilder{
		parseCounts: map[model.RejectReason]int{},
		compCounts:  map[model.RejectReason]int{},
	}
}

// Add classifies one run into the pipeline stages and returns the
// verdict: RejectNone when the run reaches the comparable set, otherwise
// the first failing check.
func (b *DatasetBuilder) Add(r *model.Run) model.RejectReason {
	b.ds.Raw = append(b.ds.Raw, r)
	if rr := model.CheckParseConsistency(r); rr != model.RejectNone {
		b.parseCounts[rr]++
		return rr
	}
	b.ds.Parsed = append(b.ds.Parsed, r)
	if rr := model.CheckComparability(r); rr != model.RejectNone {
		b.compCounts[rr]++
		return rr
	}
	b.ds.Comparable = append(b.ds.Comparable, r)
	return model.RejectNone
}

// Len reports how many runs have been added.
func (b *DatasetBuilder) Len() int { return len(b.ds.Raw) }

// Funnel snapshots the removal accounting for the runs added so far.
func (b *DatasetBuilder) Funnel() Funnel {
	f := Funnel{
		Raw:        len(b.ds.Raw),
		Parsed:     len(b.ds.Parsed),
		Comparable: len(b.ds.Comparable),
	}
	for _, rr := range model.ParseReasons() {
		f.ParseStage = append(f.ParseStage,
			ReasonCount{Reason: rr, Count: b.parseCounts[rr]})
	}
	for _, rr := range model.ComparabilityReasons() {
		f.ComparabilityStage = append(f.ComparabilityStage,
			ReasonCount{Reason: rr, Count: b.compCounts[rr]})
	}
	return f
}

// Dataset finalizes the builder. Further Add calls keep extending the
// same underlying dataset; call Dataset again for a fresh snapshot.
func (b *DatasetBuilder) Dataset() *Dataset {
	b.ds.Funnel = b.Funnel()
	if b.ds.id == nil {
		b.ds.id = new(datasetID)
	}
	return &b.ds
}

// Snapshot returns an independent point-in-time view of the corpus: a
// dataset with its own cache identity whose PrevCacheKey links to the
// builder's previous Snapshot, so dataset-keyed caches distinguish
// generations while warm-start caches can walk back one. Later Add
// calls never alter a snapshot — appends extend the builder's slices
// strictly past every snapshot's length, and runs are never mutated —
// so snapshots may be read concurrently with further building.
func (b *DatasetBuilder) Snapshot() *Dataset {
	ds := b.ds
	ds.Funnel = b.Funnel()
	ds.id = new(datasetID)
	ds.prev = b.lastSnap
	b.lastSnap = ds.id
	return &ds
}
