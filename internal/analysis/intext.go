package analysis

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/stats"
)

// SubmissionStats reproduces the Section II in-text numbers over the
// parsed corpus (S2).
type SubmissionStats struct {
	// RunsPerYear0523 is the average submission rate 2005–2023
	// (paper: 44.2); RunsPerYear1317 covers 2013–2017 (paper: 15.2).
	RunsPerYear0523 float64
	RunsPerYear1317 float64
	// LinuxSharePre/Post split at hardware availability 2018
	// (paper: 2.2 % → 36.3 %).
	LinuxSharePre, LinuxSharePost float64
	// AMDSharePre/Post likewise (paper: 13.0 % → 31.3 %), measured over
	// Intel+AMD runs.
	AMDSharePre, AMDSharePost float64
}

// SubmissionTrends computes SubmissionStats.
func SubmissionTrends(parsed []*model.Run) SubmissionStats {
	var s SubmissionStats
	var n0523, n1317 float64
	var pre, post, preLinux, postLinux float64
	var preX86, postX86, preAMD, postAMD float64
	for _, r := range parsed {
		y := r.HWAvail.Year
		if y >= 2005 && y <= 2023 {
			n0523++
		}
		if y >= 2013 && y <= 2017 {
			n1317++
		}
		isLinux := r.OSFamily == model.OSLinux
		isX86 := r.CPUVendor == model.VendorIntel || r.CPUVendor == model.VendorAMD
		if y < 2018 {
			pre++
			if isLinux {
				preLinux++
			}
			if isX86 {
				preX86++
				if r.CPUVendor == model.VendorAMD {
					preAMD++
				}
			}
		} else {
			post++
			if isLinux {
				postLinux++
			}
			if isX86 {
				postX86++
				if r.CPUVendor == model.VendorAMD {
					postAMD++
				}
			}
		}
	}
	s.RunsPerYear0523 = n0523 / 19
	s.RunsPerYear1317 = n1317 / 5
	if pre > 0 {
		s.LinuxSharePre = preLinux / pre
	}
	if post > 0 {
		s.LinuxSharePost = postLinux / post
	}
	if preX86 > 0 {
		s.AMDSharePre = preAMD / preX86
	}
	if postX86 > 0 {
		s.AMDSharePost = postAMD / postX86
	}
	return s
}

// GrowthFactor is the late/early mean ratio of a metric at one load.
type GrowthFactor struct {
	Load      int
	EarlyMean float64 // runs with hardware availability ≤ EarlyCut
	LateMean  float64 // runs with hardware availability ≥ LateCut
	Factor    float64
}

// Power-growth era boundaries (paper: "runs up to 2010" vs "since 2022").
const (
	EarlyCut = 2010
	LateCut  = 2022
)

// PowerGrowth computes S3: mean per-socket power in the early and late
// eras at the given loads (paper: ×2.5 at 100 %, ×2.2 at 70 %, ×1.8 at
// 20 %, with 119.0 W → 303.3 W at full load).
func PowerGrowth(comparable []*model.Run, loads ...int) []GrowthFactor {
	if len(loads) == 0 {
		loads = []int{100, 70, 20}
	}
	out := make([]GrowthFactor, 0, len(loads))
	for _, load := range loads {
		var early, late []float64
		for _, r := range comparable {
			v := r.PowerPerSocketAt(load)
			if math.IsNaN(v) {
				continue
			}
			switch {
			case r.HWAvail.Year <= EarlyCut:
				early = append(early, v)
			case r.HWAvail.Year >= LateCut:
				late = append(late, v)
			}
		}
		gf := GrowthFactor{
			Load:      load,
			EarlyMean: stats.Mean(early),
			LateMean:  stats.Mean(late),
		}
		gf.Factor = gf.LateMean / gf.EarlyMean
		out = append(out, gf)
	}
	return out
}

// TopEfficiency is S4: vendor composition of the n most efficient runs.
type TopEfficiency struct {
	N        int
	ByVendor map[string]int
}

// TopEfficient ranks the comparable runs by overall ssj_ops/W (paper:
// 98 of the top 100 use AMD).
func TopEfficient(comparable []*model.Run, n int) TopEfficiency {
	ranked := append([]*model.Run(nil), comparable...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].OverallOpsPerWatt() > ranked[j].OverallOpsPerWatt()
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	out := TopEfficiency{N: n, ByVendor: map[string]int{}}
	for _, r := range ranked[:n] {
		out.ByVendor[r.CPUVendor.String()]++
	}
	return out
}

// IdleFractionStats is S5: the key points of the idle-fraction history.
type IdleFractionStats struct {
	// FirstYearMean is the earliest year's mean (paper: 70.1 % in 2006).
	FirstYear     int
	FirstYearMean float64
	// MinYear is the year of the minimum yearly mean (paper: 15.7 % in 2017).
	MinYear     int
	MinYearMean float64
	// LastYearMean is the final year's mean (paper: 25.7 % in 2024).
	LastYear     int
	LastYearMean float64
}

// IdleFractionHistory extracts S5 from the Figure 5 yearly means,
// considering only years with at least minRuns runs (tiny early bins are
// noise).
func IdleFractionHistory(comparable []*model.Run, minRuns int) IdleFractionStats {
	yearly := YearlyMeans(comparable, (*model.Run).IdleFraction)
	var kept []YearlyStat
	for _, ys := range yearly {
		if ys.N >= minRuns {
			kept = append(kept, ys)
		}
	}
	var s IdleFractionStats
	if len(kept) == 0 {
		return s
	}
	s.FirstYear, s.FirstYearMean = kept[0].Year, kept[0].Mean
	s.LastYear, s.LastYearMean = kept[len(kept)-1].Year, kept[len(kept)-1].Mean
	s.MinYearMean = math.Inf(1)
	for _, ys := range kept {
		if ys.Mean < s.MinYearMean {
			s.MinYear, s.MinYearMean = ys.Year, ys.Mean
		}
	}
	return s
}

// VendorFeature is one side of the S6 comparison.
type VendorFeature struct {
	N         int
	MeanCores float64
	MeanGHz   float64
	StdGHz    float64
}

// RecentFeatureStats is S6: since-2021 feature comparison (paper: AMD
// mean cores 85.8 vs Intel 39.5; nominal frequency means ≈2.3 GHz both,
// standard deviations 0.3 vs 0.5 GHz) plus the correlation exploration
// the paper reports as inconclusive.
type RecentFeatureStats struct {
	SinceYear int
	AMD       VendorFeature
	Intel     VendorFeature
	// CorrNames and Corr hold the Pearson matrix over run features.
	CorrNames []string
	Corr      [][]float64
}

// RecentFeatures computes S6 over runs with hardware availability in or
// after sinceYear.
func RecentFeatures(comparable []*model.Run, sinceYear int) RecentFeatureStats {
	out := RecentFeatureStats{SinceYear: sinceYear}
	cols := map[string][]float64{}
	push := func(name string, v float64) { cols[name] = append(cols[name], v) }
	var amdCores, amdGHz, intelCores, intelGHz []float64
	for _, r := range comparable {
		if r.HWAvail.Year < sinceYear {
			continue
		}
		switch r.CPUVendor {
		case model.VendorAMD:
			amdCores = append(amdCores, float64(r.TotalCores))
			amdGHz = append(amdGHz, r.NominalGHz)
		case model.VendorIntel:
			intelCores = append(intelCores, float64(r.TotalCores))
			intelGHz = append(intelGHz, r.NominalGHz)
		}
		push("cores", float64(r.TotalCores))
		push("ghz", r.NominalGHz)
		push("tdp", r.TDPWatts)
		push("idle_frac", r.IdleFraction())
		push("idle_quot", r.ExtrapolatedIdleQuotient())
		push("overall_eff", r.OverallOpsPerWatt())
	}
	out.AMD = VendorFeature{
		N:         len(amdCores),
		MeanCores: stats.Mean(amdCores),
		MeanGHz:   stats.Mean(amdGHz),
		StdGHz:    stats.StdDev(amdGHz),
	}
	out.Intel = VendorFeature{
		N:         len(intelCores),
		MeanCores: stats.Mean(intelCores),
		MeanGHz:   stats.Mean(intelGHz),
		StdGHz:    stats.StdDev(intelGHz),
	}
	out.CorrNames = []string{"cores", "ghz", "tdp", "idle_frac", "idle_quot", "overall_eff"}
	out.Corr = stats.CorrMatrix(cols, out.CorrNames)
	return out
}
