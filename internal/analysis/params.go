package analysis

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Kind is the value type of a declared parameter.
type Kind int

// The supported parameter kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindBool
	KindEnum
	KindStringList
)

// String returns the schema spelling of the kind, as echoed by the
// HTTP listing and error responses.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindEnum:
		return "enum"
	case KindStringList:
		return "string-list"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param declares one typed parameter of an analysis: its name, kind,
// default, and (optionally) an enum domain or a validation hook. The
// declaration is the single source of truth every surface shares — the
// HTTP server parses query strings against it, the CLIs parse -p
// assignments against it, and the engine keys its memo cache by the
// canonicalized values.
type Param struct {
	// Name is the key clients pass (?k=5, -p clusters.k=5).
	Name string
	// Kind selects how raw string inputs parse.
	Kind Kind
	// Description documents the knob in listings and usage strings.
	Description string
	// Default is the value used when the parameter is not supplied:
	// int/int64, float64, string, bool, or []string to match Kind
	// (nil = the kind's zero value). A request that spells out the
	// default canonicalizes identically to one that omits it.
	Default any
	// Enum is the allowed value set for KindEnum (matched
	// case-insensitively; the canonical spelling is the listed one).
	Enum []string
	// Validate, when non-nil, rejects parsed values the kind alone
	// cannot (ranges, known feature names, …). It receives the typed
	// value: int64, float64, string, bool, or []string.
	Validate func(v any) error
}

// Params is a keyed, canonicalized bag of resolved parameter values, as
// produced by Schema.Resolve and passed to every analysis Func. The
// zero Params is valid and means "all defaults" — engines resolve it
// against the registration's schema before invoking the analysis.
type Params struct {
	values    map[string]any
	canonical string
}

// Canonical returns the parameter bag's identity string: the
// non-default assignments, sorted by name, joined "k=v&k=v". Two
// requests with equal canonical strings denote the same computation —
// the engine memo cache and the HTTP ETags key by it — and a request
// that only spells out defaults canonicalizes to "".
func (p Params) Canonical() string { return p.canonical }

// IsZero reports whether the bag is the zero value (never resolved).
func (p Params) IsZero() bool { return p.values == nil }

func (p Params) value(name string) any {
	v, ok := p.values[name]
	if !ok {
		panic(fmt.Sprintf("analysis: parameter %q not in schema (have %v)", name, p.values))
	}
	return v
}

// Int returns a KindInt parameter's value. Like every typed getter, it
// panics on a name the schema does not declare: analyses read their own
// declared parameters, so a miss is a programming error.
func (p Params) Int(name string) int { return int(p.value(name).(int64)) }

// Int64 returns a KindInt parameter's value at full width.
func (p Params) Int64(name string) int64 { return p.value(name).(int64) }

// Float returns a KindFloat parameter's value.
func (p Params) Float(name string) float64 { return p.value(name).(float64) }

// Str returns a KindString or KindEnum parameter's value.
func (p Params) Str(name string) string { return p.value(name).(string) }

// Bool returns a KindBool parameter's value.
func (p Params) Bool(name string) bool { return p.value(name).(bool) }

// Strings returns a KindStringList parameter's value.
func (p Params) Strings(name string) []string {
	if v := p.value(name); v != nil {
		return v.([]string)
	}
	return nil
}

// Schema declares an analysis's parameters, in presentation order.
type Schema []Param

// canonicalEscaper escapes the canonical form's separators ("&"
// between assignments, "=" within one) and the escape character
// itself inside values, so a string value containing them cannot
// collide two distinct parameter bags into one cache/validator
// identity. Values without separators — every current registration —
// canonicalize unchanged.
var canonicalEscaper = strings.NewReplacer("%", "%25", "&", "%26", "=", "%3D")

// BadParamsError is a request-level parameter failure: an unknown key,
// a value the kind cannot parse, a validation miss, or a combination an
// analysis rejects at compute time (hac without k or cut, k beyond the
// corpus). Serving layers map it to 400 Bad Request — it blames the
// request, never the corpus or the implementation.
type BadParamsError struct {
	msg string
}

func (e *BadParamsError) Error() string { return "analysis: " + e.msg }

// BadParams builds a BadParamsError; analyses use it to reject
// parameter combinations their schema's per-key validation cannot see.
func BadParams(format string, args ...any) error {
	return &BadParamsError{msg: fmt.Sprintf(format, args...)}
}

// Resolve parses and validates raw string inputs against the schema
// and returns the canonicalized value bag: every declared parameter
// resolved (supplied or default), every supplied key declared. An
// empty raw value counts as absent, so ?k= falls back to the default
// rather than failing to parse. All errors are BadParamsErrors.
func (s Schema) Resolve(raw map[string]string) (Params, error) {
	for key := range raw {
		if !s.declares(key) {
			return Params{}, BadParams("unknown parameter %q (declared: %s)",
				key, strings.Join(s.names(), ", "))
		}
	}
	values := make(map[string]any, len(s))
	var assigned []string
	for _, par := range s {
		def := par.normalizedDefault()
		v := def
		if rawV, ok := raw[par.Name]; ok && rawV != "" {
			parsed, err := par.parse(rawV)
			if err != nil {
				return Params{}, err
			}
			v = parsed
		}
		if par.Validate != nil {
			if err := par.Validate(v); err != nil {
				return Params{}, BadParams("parameter %q: %v", par.Name, err)
			}
		}
		values[par.Name] = v
		if !equalValues(v, def) {
			assigned = append(assigned, par.Name+"="+canonicalEscaper.Replace(formatValue(v)))
		}
	}
	sort.Strings(assigned)
	return Params{values: values, canonical: strings.Join(assigned, "&")}, nil
}

// Defaults returns the all-default bag. It panics if a default fails
// its own Validate hook — a schema whose defaults are invalid is a
// programming error, caught the first time the analysis resolves.
func (s Schema) Defaults() Params {
	p, err := s.Resolve(nil)
	if err != nil {
		panic(fmt.Sprintf("analysis: schema defaults invalid: %v", err))
	}
	return p
}

func (s Schema) declares(name string) bool {
	for _, par := range s {
		if par.Name == name {
			return true
		}
	}
	return false
}

func (s Schema) names() []string {
	names := make([]string, len(s))
	for i, par := range s {
		names[i] = par.Name
	}
	return names
}

// normalizedDefault widens the declared default to the stored
// representation (int64 for ints), or the kind's zero when nil.
func (p Param) normalizedDefault() any {
	if p.Default == nil {
		switch p.Kind {
		case KindInt:
			return int64(0)
		case KindFloat:
			return float64(0)
		case KindString, KindEnum:
			return ""
		case KindBool:
			return false
		case KindStringList:
			return []string(nil)
		}
	}
	if v, ok := p.Default.(int); ok && p.Kind == KindInt {
		return int64(v)
	}
	return p.Default
}

// parse converts one raw string to the kind's typed value.
func (p Param) parse(raw string) (any, error) {
	switch p.Kind {
	case KindInt:
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, BadParams("parameter %q: %q is not an integer", p.Name, raw)
		}
		return v, nil
	case KindFloat:
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, BadParams("parameter %q: %q is not a number", p.Name, raw)
		}
		return v, nil
	case KindBool:
		v, err := strconv.ParseBool(raw)
		if err != nil {
			return nil, BadParams("parameter %q: %q is not a boolean", p.Name, raw)
		}
		return v, nil
	case KindString:
		return raw, nil
	case KindEnum:
		for _, allowed := range p.Enum {
			if strings.EqualFold(raw, allowed) {
				return allowed, nil
			}
		}
		return nil, BadParams("parameter %q: %q not one of %s",
			p.Name, raw, strings.Join(p.Enum, ", "))
	case KindStringList:
		var list []string
		for _, item := range strings.Split(raw, ",") {
			if item = strings.TrimSpace(item); item != "" {
				list = append(list, item)
			}
		}
		return list, nil
	default:
		return nil, BadParams("parameter %q: unsupported kind %v", p.Name, p.Kind)
	}
}

func equalValues(a, b any) bool {
	la, aok := a.([]string)
	lb, bok := b.([]string)
	if aok || bok {
		return aok && bok && slices.Equal(la, lb)
	}
	return a == b
}

// formatValue renders a typed value in its canonical string spelling.
func formatValue(v any) string {
	switch t := v.(type) {
	case int64:
		return strconv.FormatInt(t, 10)
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(t)
	case string:
		return t
	case []string:
		return strings.Join(t, ",")
	default:
		return fmt.Sprint(t)
	}
}

// DefaultString renders a parameter's default in canonical spelling,
// "" when the default is the kind's zero value — the form schema
// listings and usage strings show.
func (p Param) DefaultString() string {
	def := p.normalizedDefault()
	if equalValues(def, Param{Kind: p.Kind}.normalizedDefault()) {
		return ""
	}
	return formatValue(def)
}
