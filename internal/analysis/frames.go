package analysis

import (
	"repro/internal/frame"
	"repro/internal/model"
)

// RunsFrame flattens runs into a columnar frame with every derived
// metric the analyses use. Column names are stable API.
//
//	id, vendor, class, os, year, frac, sockets, nodes, cores, threads,
//	ghz, tdp, mem_gb, full_w, idle_w, idle_frac, w_socket_100,
//	w_socket_70, w_socket_20, overall_eff, ext_idle_w, idle_quot,
//	releff_60, releff_70, releff_80, releff_90
func RunsFrame(runs []*model.Run) *frame.Frame {
	n := len(runs)
	ids := make([]string, n)
	vendors := make([]string, n)
	classes := make([]string, n)
	oses := make([]string, n)
	years := make([]int64, n)
	fracs := make([]float64, n)
	sockets := make([]int64, n)
	nodes := make([]int64, n)
	cores := make([]int64, n)
	threads := make([]int64, n)
	ghz := make([]float64, n)
	tdp := make([]float64, n)
	mem := make([]int64, n)
	fullW := make([]float64, n)
	idleW := make([]float64, n)
	idleFrac := make([]float64, n)
	wSock100 := make([]float64, n)
	wSock70 := make([]float64, n)
	wSock20 := make([]float64, n)
	overall := make([]float64, n)
	extIdle := make([]float64, n)
	quot := make([]float64, n)
	rel60 := make([]float64, n)
	rel70 := make([]float64, n)
	rel80 := make([]float64, n)
	rel90 := make([]float64, n)

	for i, r := range runs {
		ids[i] = r.ID
		vendors[i] = r.CPUVendor.String()
		classes[i] = r.CPUClass.String()
		oses[i] = r.OSFamily.String()
		years[i] = int64(r.HWAvail.Year)
		fracs[i] = r.HWAvail.Frac()
		sockets[i] = int64(r.SocketsPerNode)
		nodes[i] = int64(r.Nodes)
		cores[i] = int64(r.TotalCores)
		threads[i] = int64(r.TotalThreads)
		ghz[i] = r.NominalGHz
		tdp[i] = r.TDPWatts
		mem[i] = int64(r.MemGB)
		fullW[i] = r.FullLoadPower()
		idleW[i] = r.IdlePower()
		idleFrac[i] = r.IdleFraction()
		wSock100[i] = r.PowerPerSocketAt(100)
		wSock70[i] = r.PowerPerSocketAt(70)
		wSock20[i] = r.PowerPerSocketAt(20)
		overall[i] = r.OverallOpsPerWatt()
		extIdle[i] = r.ExtrapolatedIdlePower()
		quot[i] = r.ExtrapolatedIdleQuotient()
		rel60[i] = r.RelativeEfficiencyAt(60)
		rel70[i] = r.RelativeEfficiencyAt(70)
		rel80[i] = r.RelativeEfficiencyAt(80)
		rel90[i] = r.RelativeEfficiencyAt(90)
	}
	return frame.MustNew(
		frame.StringCol("id", ids),
		frame.StringCol("vendor", vendors),
		frame.StringCol("class", classes),
		frame.StringCol("os", oses),
		frame.IntCol("year", years),
		frame.FloatCol("frac", fracs),
		frame.IntCol("sockets", sockets),
		frame.IntCol("nodes", nodes),
		frame.IntCol("cores", cores),
		frame.IntCol("threads", threads),
		frame.FloatCol("ghz", ghz),
		frame.FloatCol("tdp", tdp),
		frame.IntCol("mem_gb", mem),
		frame.FloatCol("full_w", fullW),
		frame.FloatCol("idle_w", idleW),
		frame.FloatCol("idle_frac", idleFrac),
		frame.FloatCol("w_socket_100", wSock100),
		frame.FloatCol("w_socket_70", wSock70),
		frame.FloatCol("w_socket_20", wSock20),
		frame.FloatCol("overall_eff", overall),
		frame.FloatCol("ext_idle_w", extIdle),
		frame.FloatCol("idle_quot", quot),
		frame.FloatCol("releff_60", rel60),
		frame.FloatCol("releff_70", rel70),
		frame.FloatCol("releff_80", rel80),
		frame.FloatCol("releff_90", rel90),
	)
}
