package analysis

import (
	"math"
	"sort"

	"repro/internal/model"
)

// EPScore computes an energy-proportionality score for one run,
// following the linear-deviation formulation used in the energy
// proportionality literature the paper builds on (Hsu/Poole): with
// rel(u) the measured power at utilization u as a fraction of full
// power,
//
//	EP = 1 − (A − 1/2) / (1/2)  =  2·(1 − A)
//
// where A = ∫ rel(u) du over the measured partial-load span, computed
// by trapezoid over the run's graduated load points. The active-idle
// interval is excluded: proportionality concerns a system that is doing
// work (Figure 4 likewise analyses 60–90 % load), and including the
// package-C-state idle point would conflate the paper's two separate
// findings (proportionality improving; idle optimization regressing).
// A perfectly proportional system (rel(u) = u) scores 1; a system
// drawing full power at every load scores 0; scores above 1 are
// possible when partial-load power dips below the proportional line.
func EPScore(r *model.Run) float64 {
	full := r.FullLoadPower()
	if math.IsNaN(full) || full <= 0 {
		return math.NaN()
	}
	type uv struct{ u, rel float64 }
	var pts []uv
	for _, p := range r.Points {
		if p.TargetLoad == 0 {
			continue // active idle excluded (see above)
		}
		pts = append(pts, uv{float64(p.TargetLoad) / 100, p.AvgPower / full})
	}
	if len(pts) < 2 {
		return math.NaN()
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].u < pts[j].u })
	var area float64
	for i := 1; i < len(pts); i++ {
		du := pts[i].u - pts[i-1].u
		area += du * (pts[i].rel + pts[i-1].rel) / 2
	}
	lo, hi := pts[0].u, pts[len(pts)-1].u
	span := hi - lo
	if span <= 0 {
		return math.NaN()
	}
	meanRel := area / span
	// Over the span [lo,hi], a flat curve has mean 1 and a proportional
	// one has mean (lo+hi)/2; map those to 0 and 1 respectively.
	denom := 1 - (lo+hi)/2
	if denom <= 0 {
		return math.NaN()
	}
	return (1 - meanRel) / denom
}

// EPByYear bins EP scores by hardware-availability year (the positive
// proportionality trend of the paper's conclusion).
func EPByYear(comparable []*model.Run) []YearlyStat {
	return YearlyMeans(comparable, EPScore)
}
