package analysis

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func testSchema() Schema {
	return Schema{
		{Name: "k", Kind: KindInt, Default: 0, Validate: func(v any) error {
			if v.(int64) < 0 {
				return fmt.Errorf("negative")
			}
			return nil
		}},
		{Name: "alpha", Kind: KindFloat, Default: 0.1},
		{Name: "algo", Kind: KindEnum, Enum: []string{"kmeans", "hac"}, Default: "kmeans"},
		{Name: "label", Kind: KindString},
		{Name: "strict", Kind: KindBool, Default: false},
		{Name: "cols", Kind: KindStringList},
	}
}

func mustResolve(t *testing.T, s Schema, raw map[string]string) Params {
	t.Helper()
	p, err := s.Resolve(raw)
	if err != nil {
		t.Fatalf("Resolve(%v): %v", raw, err)
	}
	return p
}

func TestSchemaResolveDefaults(t *testing.T) {
	p := mustResolve(t, testSchema(), nil)
	if p.IsZero() {
		t.Fatal("resolved params report IsZero")
	}
	if p.Canonical() != "" {
		t.Errorf("all-default canonical = %q, want empty", p.Canonical())
	}
	if p.Int("k") != 0 || p.Float("alpha") != 0.1 || p.Str("algo") != "kmeans" ||
		p.Str("label") != "" || p.Bool("strict") || p.Strings("cols") != nil {
		t.Errorf("defaults wrong: %+v", p)
	}
}

func TestSchemaResolveValues(t *testing.T) {
	p := mustResolve(t, testSchema(), map[string]string{
		"k":      "5",
		"alpha":  "0.25",
		"algo":   "HAC", // enum matching is case-insensitive
		"strict": "true",
		"cols":   " a , b ,,c ",
	})
	if p.Int("k") != 5 || p.Int64("k") != 5 {
		t.Errorf("k = %d", p.Int("k"))
	}
	if p.Float("alpha") != 0.25 {
		t.Errorf("alpha = %v", p.Float("alpha"))
	}
	if p.Str("algo") != "hac" {
		t.Errorf("algo = %q, want the canonical enum spelling", p.Str("algo"))
	}
	if !p.Bool("strict") {
		t.Error("strict = false")
	}
	if got := p.Strings("cols"); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("cols = %v", got)
	}
}

// TestSchemaCanonicalFoldsDefaults: canonical identity lists only the
// non-default assignments, sorted, so a request that spells out a
// default shares the identity (memo slot, ETag) of one that omits it.
func TestSchemaCanonicalFoldsDefaults(t *testing.T) {
	s := testSchema()
	explicit := mustResolve(t, s, map[string]string{
		"k": "0", "alpha": "0.1", "algo": "kmeans", "strict": "false",
	})
	if explicit.Canonical() != "" {
		t.Errorf("spelled-out defaults canonicalize to %q, want empty", explicit.Canonical())
	}
	p := mustResolve(t, s, map[string]string{"strict": "1", "k": "3"})
	if got, want := p.Canonical(), "k=3&strict=true"; got != want {
		t.Errorf("canonical = %q, want %q (sorted, normalized spellings)", got, want)
	}
	// Empty raw values fall back to the default rather than failing.
	p = mustResolve(t, s, map[string]string{"k": ""})
	if p.Canonical() != "" || p.Int("k") != 0 {
		t.Errorf("empty raw value: canonical %q, k %d", p.Canonical(), p.Int("k"))
	}
}

func TestSchemaResolveErrors(t *testing.T) {
	s := testSchema()
	cases := []struct {
		raw  map[string]string
		want string
	}{
		{map[string]string{"nope": "1"}, "unknown parameter"},
		{map[string]string{"k": "abc"}, "not an integer"},
		{map[string]string{"alpha": "x"}, "not a number"},
		{map[string]string{"strict": "maybe"}, "not a boolean"},
		{map[string]string{"algo": "ward"}, "not one of"},
		{map[string]string{"k": "-2"}, "negative"},
	}
	for _, c := range cases {
		_, err := s.Resolve(c.raw)
		if err == nil {
			t.Errorf("Resolve(%v) succeeded, want error containing %q", c.raw, c.want)
			continue
		}
		var bad *BadParamsError
		if !errors.As(err, &bad) {
			t.Errorf("Resolve(%v) error is %T, want *BadParamsError", c.raw, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Resolve(%v) error %q missing %q", c.raw, err, c.want)
		}
	}
	// The unknown-key error lists what is declared.
	_, err := s.Resolve(map[string]string{"nope": "1"})
	if !strings.Contains(err.Error(), "k, alpha, algo") {
		t.Errorf("unknown-key error %q does not list the schema", err)
	}
}

// TestCanonicalEscapesSeparators: a string value containing the
// canonical form's separators must not collide two distinct bags into
// one identity (one memo slot, one ETag).
func TestCanonicalEscapesSeparators(t *testing.T) {
	s := Schema{
		{Name: "x", Kind: KindString},
		{Name: "y", Kind: KindString},
	}
	smuggled := mustResolve(t, s, map[string]string{"x": "1&y=2"})
	honest := mustResolve(t, s, map[string]string{"x": "1", "y": "2"})
	if smuggled.Canonical() == honest.Canonical() {
		t.Fatalf("distinct bags share canonical %q", honest.Canonical())
	}
	if got, want := honest.Canonical(), "x=1&y=2"; got != want {
		t.Errorf("plain values canonicalize to %q, want %q", got, want)
	}
}

func TestParamsGetterPanicsOnUndeclared(t *testing.T) {
	p := mustResolve(t, testSchema(), nil)
	defer func() {
		if recover() == nil {
			t.Error("reading an undeclared parameter should panic")
		}
	}()
	p.Int("undeclared")
}

func TestRegisterParamsValidatesDefaults(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RegisterParams with invalid defaults should panic at init")
		}
	}()
	RegisterParams("bad_defaults_probe", "x", Schema{
		{Name: "k", Kind: KindInt, Default: 0, Validate: func(v any) error {
			return fmt.Errorf("always invalid")
		}},
	}, func(*Dataset, Params) (any, error) { return nil, nil })
}

func TestDefaultString(t *testing.T) {
	cases := []struct {
		p    Param
		want string
	}{
		{Param{Name: "k", Kind: KindInt, Default: 8}, "8"},
		{Param{Name: "k", Kind: KindInt}, ""},
		{Param{Name: "cut", Kind: KindFloat, Default: 2.5}, "2.5"},
		{Param{Name: "algo", Kind: KindEnum, Default: "kmeans"}, "kmeans"},
		{Param{Name: "cols", Kind: KindStringList}, ""},
	}
	for _, c := range cases {
		if got := c.p.DefaultString(); got != c.want {
			t.Errorf("DefaultString(%s) = %q, want %q", c.p.Name, got, c.want)
		}
	}
}

// TestRegisteredSchemasResolve: every schema in the live registry must
// resolve its own defaults — the invariant RegisterParams enforces for
// new registrations, re-checked here over whatever initialized.
func TestRegisteredSchemasResolve(t *testing.T) {
	for _, name := range Names() {
		reg, _ := Lookup(name)
		if _, err := reg.Params.Resolve(nil); err != nil {
			t.Errorf("%s: defaults do not resolve: %v", name, err)
		}
	}
}
