package ptd

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Source supplies instantaneous power readings in watts.
type Source func() float64

// Server is a simulated PTDaemon: it accepts TCP connections and serves
// the measurement protocol, sampling its Source while measuring.
type Server struct {
	source Source
	period time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer builds a server over the given source, sampling every
// period while a measurement is active.
func NewServer(source Source, period time.Duration) (*Server, error) {
	if source == nil {
		return nil, fmt.Errorf("ptd: nil source")
	}
	if period <= 0 {
		return nil, fmt.Errorf("ptd: non-positive sample period %v", period)
	}
	return &Server{source: source, period: period, conns: make(map[net.Conn]struct{})}, nil
}

// Listen starts serving on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ptd: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// measurement is the per-connection sampling state.
type measurement struct {
	mu   sync.Mutex
	sum  float64
	n    int
	stop chan struct{}
	done chan struct{}
}

func (s *Server) startMeasure() *measurement {
	m := &measurement{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(m.done)
		tick := time.NewTicker(s.period)
		defer tick.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-tick.C:
				w := s.source()
				m.mu.Lock()
				m.sum += w
				m.n++
				m.mu.Unlock()
			}
		}
	}()
	return m
}

func (m *measurement) average(fallback Source) (float64, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.n == 0 {
		// Interval shorter than the sample period: report one
		// instantaneous reading so callers always get data.
		return fallback(), 1
	}
	return m.sum / float64(m.n), m.n
}

func (m *measurement) end() {
	close(m.stop)
	<-m.done
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	var cur *measurement
	defer func() {
		if cur != nil {
			cur.end()
		}
	}()
	for sc.Scan() {
		cmd := strings.ToUpper(strings.TrimSpace(sc.Text()))
		var reply string
		switch cmd {
		case "HELLO":
			reply = "PTD,SimPTDaemon,1.0"
		case "START":
			if cur != nil {
				reply = "ERR,measurement already running"
				break
			}
			cur = s.startMeasure()
			reply = "OK"
		case "READ":
			if cur == nil {
				reply = "ERR,no measurement running"
				break
			}
			avg, n := cur.average(s.source)
			reply = fmt.Sprintf("WATTS,%.3f,%d", avg, n)
		case "STOP":
			if cur == nil {
				reply = "ERR,no measurement running"
				break
			}
			cur.end()
			avg, n := cur.average(s.source)
			cur = nil
			reply = fmt.Sprintf("OK,WATTS,%.3f,%d", avg, n)
		case "QUIT":
			fmt.Fprintf(conn, "OK\r\n")
			return
		case "":
			continue
		default:
			reply = fmt.Sprintf("ERR,unknown command %q", cmd)
		}
		if _, err := fmt.Fprintf(conn, "%s\r\n", reply); err != nil {
			return
		}
	}
}
