// Package ptd simulates the SPEC PTDaemon power-measurement interface:
// a line-oriented TCP protocol between a benchmark harness and a daemon
// that owns the power analyzer.
//
// The simulated daemon samples a power source (typically a power.Curve
// driven by a LoadTracker shared with the ssj engine) at a fixed cadence
// while a measurement is active, and reports the interval average. The
// Client type implements the ssj.Meter interface, so a benchmark run can
// be measured either in-process or across a real TCP connection — the
// path the paper's dataset was produced through.
//
// Protocol (one command per line, comma-separated replies):
//
//	HELLO            → PTD,SimPTDaemon,1.0
//	START            → OK
//	READ             → WATTS,<avg>,<samples>     (running average)
//	STOP             → OK,WATTS,<avg>,<samples>  (ends the measurement)
//	QUIT             → OK (connection closes)
//	anything else    → ERR,<reason>
package ptd
