package ptd

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/power"
)

func testCurve() power.Curve {
	return power.Curve{
		FullWatts: 500,
		Prof: power.Profile{IdleFrac: 0.2, LowIntercept: 0.3, Beta: 0.85,
			TurboWeight: 0.25, TurboGamma: 3},
	}
}

func startServer(t *testing.T, src Source) (*Server, string) {
	t.Helper()
	srv, err := NewServer(src, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, time.Millisecond); err == nil {
		t.Error("nil source should error")
	}
	if _, err := NewServer(func() float64 { return 1 }, 0); err == nil {
		t.Error("zero period should error")
	}
}

func TestHandshakeAndMeasurement(t *testing.T) {
	_, addr := startServer(t, func() float64 { return 123.5 })
	c, err := Dial(addr, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	w, n, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-123.5) > 1e-6 || n == 0 {
		t.Errorf("Read = %v W over %d samples", w, n)
	}
	w, err = c.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-123.5) > 1e-6 {
		t.Errorf("Stop avg = %v", w)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr := startServer(t, func() float64 { return 1 })
	c, err := Dial(addr, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// STOP before START.
	if _, err := c.Stop(); err == nil || !strings.Contains(err.Error(), "no measurement") {
		t.Errorf("expected protocol error, got %v", err)
	}
	// Double START.
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil || !strings.Contains(err.Error(), "already running") {
		t.Errorf("expected double-start error, got %v", err)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, addr := startServer(t, func() float64 { return 1 })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "BOGUS\r\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR,") {
		t.Errorf("reply = %q, want ERR", line)
	}
}

func TestShortIntervalFallbackReading(t *testing.T) {
	// Interval far shorter than the sampling period still returns data.
	srv, err := NewServer(func() float64 { return 77 }, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	w, err := c.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if w != 77 {
		t.Errorf("fallback reading = %v, want 77", w)
	}
}

func TestLoadTrackerCoupling(t *testing.T) {
	var tr LoadTracker
	src := CurveSource(testCurve(), &tr)
	_, addr := startServer(t, src)
	c, err := Dial(addr, &tr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	measure := func(u float64) float64 {
		c.SetLoad(u)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond)
		w, err := c.Stop()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	full := measure(1)
	idle := measure(0)
	if math.Abs(full-500) > 1 {
		t.Errorf("full-load reading = %v, want ≈500", full)
	}
	if math.Abs(idle-100) > 1 {
		t.Errorf("idle reading = %v, want ≈100", idle)
	}
}

func TestTrackerClamps(t *testing.T) {
	var tr LoadTracker
	tr.Set(-5)
	if tr.Load() != 0 {
		t.Errorf("Load = %v, want 0", tr.Load())
	}
	tr.Set(7)
	if tr.Load() != 1 {
		t.Errorf("Load = %v, want 1", tr.Load())
	}
	tr.Set(0.42)
	if math.Abs(tr.Load()-0.42) > 1e-12 {
		t.Errorf("Load = %v", tr.Load())
	}
}

func TestClientClosedUse(t *testing.T) {
	_, addr := startServer(t, func() float64 { return 1 })
	c, err := Dial(addr, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close should be a no-op, got %v", err)
	}
	if err := c.Start(); err == nil {
		t.Error("Start on closed client should error")
	}
}

func TestServerSurvivesAbruptDisconnect(t *testing.T) {
	_, addr := startServer(t, func() float64 { return 9 })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "START\r\n")
	conn.Close() // mid-measurement disconnect
	// Server must still accept new clients.
	c, err := Dial(addr, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleSequentialMeasurements(t *testing.T) {
	_, addr := startServer(t, func() float64 { return 50 })
	c, err := Dial(addr, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Start(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
		if _, err := c.Stop(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}
