package ptd

import (
	"math"
	"sync/atomic"

	"repro/internal/power"
)

// LoadTracker shares the SUT's current utilization between the
// benchmark harness (writer) and the daemon's power source (reader),
// modelling the physical fact that the analyzer sees whatever the SUT
// is doing.
type LoadTracker struct {
	bits atomic.Uint64
}

// Set stores the current utilization in [0,1].
func (t *LoadTracker) Set(u float64) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	t.bits.Store(math.Float64bits(u))
}

// Load returns the last stored utilization.
func (t *LoadTracker) Load() float64 {
	return math.Float64frombits(t.bits.Load())
}

// CurveSource builds a Source that evaluates the power curve at the
// tracker's current utilization.
func CurveSource(curve power.Curve, tracker *LoadTracker) Source {
	return func() float64 {
		return curve.At(tracker.Load())
	}
}
