package ptd

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client speaks the ptd protocol and implements the ssj.Meter interface.
// SetLoad updates an optional LoadTracker shared with the server's
// power source, standing in for the physical coupling between the SUT
// and the analyzer.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	rd      *bufio.Reader
	tracker *LoadTracker
}

// Dial connects to a ptd server and verifies the handshake. tracker may
// be nil when the power source does not depend on SUT load.
func Dial(addr string, tracker *LoadTracker, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ptd: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, rd: bufio.NewReader(conn), tracker: tracker}
	reply, err := c.roundTrip("HELLO")
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !strings.HasPrefix(reply, "PTD,") {
		conn.Close()
		return nil, fmt.Errorf("ptd: unexpected handshake %q", reply)
	}
	return c, nil
}

// roundTrip sends one command and reads one reply line.
func (c *Client) roundTrip(cmd string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return "", fmt.Errorf("ptd: client closed")
	}
	if _, err := fmt.Fprintf(c.conn, "%s\r\n", cmd); err != nil {
		return "", fmt.Errorf("ptd: send %s: %w", cmd, err)
	}
	line, err := c.rd.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("ptd: read reply to %s: %w", cmd, err)
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR,") {
		return "", fmt.Errorf("ptd: daemon error: %s", strings.TrimPrefix(line, "ERR,"))
	}
	return line, nil
}

// SetLoad implements ssj.Meter.
func (c *Client) SetLoad(u float64) {
	if c.tracker != nil {
		c.tracker.Set(u)
	}
}

// Start implements ssj.Meter.
func (c *Client) Start() error {
	_, err := c.roundTrip("START")
	return err
}

// Read returns the running average without ending the measurement.
func (c *Client) Read() (watts float64, samples int, err error) {
	reply, err := c.roundTrip("READ")
	if err != nil {
		return 0, 0, err
	}
	return parseWatts(reply, "WATTS")
}

// Stop implements ssj.Meter: it ends the measurement and returns the
// interval average.
func (c *Client) Stop() (float64, error) {
	reply, err := c.roundTrip("STOP")
	if err != nil {
		return 0, err
	}
	w, _, err := parseWatts(reply, "OK,WATTS")
	return w, err
}

// Close terminates the session.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	fmt.Fprintf(c.conn, "QUIT\r\n")
	err := c.conn.Close()
	c.conn = nil
	return err
}

func parseWatts(reply, prefix string) (float64, int, error) {
	rest, ok := strings.CutPrefix(reply, prefix+",")
	if !ok {
		return 0, 0, fmt.Errorf("ptd: malformed reply %q", reply)
	}
	parts := strings.Split(rest, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("ptd: malformed reply %q", reply)
	}
	w, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("ptd: bad watts in %q: %w", reply, err)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("ptd: bad sample count in %q: %w", reply, err)
	}
	return w, n, nil
}
