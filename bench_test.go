// Package repro's benchmark harness regenerates every table and figure
// of the paper (see DESIGN.md §4 for the experiment index). Each
// benchmark prints, once, the rows/series the paper reports — run with
//
//	go test -bench=. -benchmem
//
// The b.N loop then measures the cost of the analysis itself, so the
// harness doubles as a performance regression suite for the library.
package repro

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/evlog"
	"repro/internal/parser"
	"repro/internal/power"
	"repro/internal/ptd"
	"repro/internal/report"
	"repro/internal/sert"
	"repro/internal/serve"
	"repro/internal/speccpu"
	"repro/internal/ssj"
	"repro/internal/stats"
	"repro/internal/synth"
)

// The corpus is generated once and shared by every benchmark: one
// engine over the default synthetic source, its dataset memoized after
// the first use.
var corpusEngine = core.New()

func dataset(b *testing.B) *analysis.Dataset {
	b.Helper()
	ds, err := corpusEngine.Dataset()
	if err != nil {
		panic(err)
	}
	return ds
}

// printOnce emits the paper-table output a single time per benchmark.
var printedOnce sync.Map

func printOnce(key, text string) {
	if _, loaded := printedOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(text)
	}
}

// --- S1: the filter funnel -------------------------------------------------

func BenchmarkFilterFunnel(b *testing.B) {
	ds := dataset(b)
	printOnce("funnel", "\n[S1] "+ds.Funnel.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.BuildDataset(ds.Raw)
	}
}

// --- F1: Figure 1 ----------------------------------------------------------

func BenchmarkFigure1Shares(b *testing.B) {
	ds := dataset(b)
	rows := analysis.Fig1Shares(ds.Parsed)
	var out string
	for _, r := range rows {
		out += fmt.Sprintf("[F1] %d n=%-3d windows=%.2f linux=%.2f intel=%.2f amd=%.2f twoSocket=%.2f multiNode=%.2f\n",
			r.Year, r.Count, r.OS["Windows"], r.OS["Linux"],
			r.Vendor["Intel"], r.Vendor["AMD"], r.Sockets["2"],
			r.Nodes["2"]+r.Nodes[">2"])
	}
	printOnce("fig1", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.Fig1Shares(ds.Parsed)
	}
}

// --- F2/F3/F5/F6: scatter-and-yearly-mean figures ---------------------------

func benchTrend(b *testing.B, key string, fn func([]*model.Run) analysis.TrendFigure) {
	ds := dataset(b)
	fig := fn(ds.Comparable)
	out := "\n[" + key + "] " + fig.Name + "\n"
	for _, ys := range fig.Yearly {
		out += fmt.Sprintf("[%s] %d n=%-3d mean=%.4g median=%.4g\n",
			key, ys.Year, ys.N, ys.Mean, ys.Median)
	}
	printOnce(key, out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fn(ds.Comparable)
	}
}

func BenchmarkFigure2PowerPerSocket(b *testing.B) {
	benchTrend(b, "F2", analysis.Fig2PowerPerSocket)
}

func BenchmarkFigure3OverallEfficiency(b *testing.B) {
	benchTrend(b, "F3", analysis.Fig3OverallEfficiency)
}

func BenchmarkFigure5IdleFraction(b *testing.B) {
	benchTrend(b, "F5", analysis.Fig5IdleFraction)
	ds := dataset(b)
	s5 := analysis.IdleFractionHistory(ds.Comparable, 5)
	printOnce("fig5s5", fmt.Sprintf(
		"[S5] idle fraction %d: %.1f%% → min %d: %.1f%% → %d: %.1f%% (paper 70.1 → 15.7 → 25.7)\n",
		s5.FirstYear, 100*s5.FirstYearMean, s5.MinYear, 100*s5.MinYearMean,
		s5.LastYear, 100*s5.LastYearMean))
}

func BenchmarkFigure6IdleQuotient(b *testing.B) {
	benchTrend(b, "F6", analysis.Fig6IdleQuotient)
}

// --- F4: Figure 4 ------------------------------------------------------------

func BenchmarkFigure4RelativeEfficiency(b *testing.B) {
	ds := dataset(b)
	cells := analysis.Fig4RelativeEfficiency(ds.Comparable)
	out := "\n[F4] relative efficiency medians (vendor year load median n)\n"
	for _, c := range cells {
		if c.Load == 70 || c.Load == 90 {
			out += fmt.Sprintf("[F4] %-5s %d %d%% %.3f %d\n",
				c.Vendor, c.Year, c.Load, c.Box.Median, c.Box.N)
		}
	}
	printOnce("fig4", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.Fig4RelativeEfficiency(ds.Comparable)
	}
}

// --- T1: Table I -------------------------------------------------------------

func BenchmarkTable1VendorDuel(b *testing.B) {
	intelSys, amdSys, err := speccpu.DefaultDuel()
	if err != nil {
		b.Fatal(err)
	}
	rows, err := speccpu.Table1(intelSys, amdSys)
	if err != nil {
		b.Fatal(err)
	}
	out := "\n[T1] Table I (paper factors: ssj 2.09, fp 1.53, int 2.03)\n"
	for _, r := range rows {
		out += fmt.Sprintf("[T1] %-36s intel=%.0f amd=%.0f factor=%.2f\n",
			r.Benchmark, r.Intel, r.AMD, r.Factor)
	}
	printOnce("table1", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := speccpu.Table1(intelSys, amdSys); err != nil {
			b.Fatal(err)
		}
	}
}

// --- S2/S3/S4/S6: in-text statistics ----------------------------------------

func BenchmarkSubmissionTrends(b *testing.B) {
	ds := dataset(b)
	s := analysis.SubmissionTrends(ds.Parsed)
	printOnce("s2", fmt.Sprintf(
		"\n[S2] rate 05–23=%.1f/yr 13–17=%.1f/yr linux %.1f%%→%.1f%% amd %.1f%%→%.1f%%\n",
		s.RunsPerYear0523, s.RunsPerYear1317,
		100*s.LinuxSharePre, 100*s.LinuxSharePost,
		100*s.AMDSharePre, 100*s.AMDSharePost))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.SubmissionTrends(ds.Parsed)
	}
}

func BenchmarkPowerGrowth(b *testing.B) {
	ds := dataset(b)
	out := "\n"
	for _, g := range analysis.PowerGrowth(ds.Comparable) {
		out += fmt.Sprintf("[S3] load %3d%%: early %.1fW late %.1fW ×%.2f\n",
			g.Load, g.EarlyMean, g.LateMean, g.Factor)
	}
	printOnce("s3", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.PowerGrowth(ds.Comparable)
	}
}

func BenchmarkTopEfficient(b *testing.B) {
	ds := dataset(b)
	top := analysis.TopEfficient(ds.Comparable, 100)
	printOnce("s4", fmt.Sprintf("\n[S4] top-100: AMD %d Intel %d (paper 98/2)\n",
		top.ByVendor["AMD"], top.ByVendor["Intel"]))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.TopEfficient(ds.Comparable, 100)
	}
}

func BenchmarkRecentFeatureStats(b *testing.B) {
	ds := dataset(b)
	s := analysis.RecentFeatures(ds.Comparable, 2021)
	printOnce("s6", fmt.Sprintf(
		"\n[S6] since 2021: cores AMD %.1f / Intel %.1f; GHz %.2f±%.2f / %.2f±%.2f (paper 85.8/39.5; ≈2.3, σ .3/.5)\n",
		s.AMD.MeanCores, s.Intel.MeanCores,
		s.AMD.MeanGHz, s.AMD.StdGHz, s.Intel.MeanGHz, s.Intel.StdGHz))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.RecentFeatures(ds.Comparable, 2021)
	}
}

// --- Extended analyses: trend tests, EP, confounding, SERT -------------------

func BenchmarkPaperTrendTests(b *testing.B) {
	ds := dataset(b)
	trends, err := analysis.PaperTrends(ds.Comparable, 0.10, 0)
	if err != nil {
		b.Fatal(err)
	}
	out := "\n"
	for _, ta := range trends {
		out += fmt.Sprintf("[TR] %-44s %-11s p=%.4f sen=%+.4g/yr tau=%+.2f\n",
			ta.Metric, ta.MK.Direction, ta.MK.P, ta.SenSlopePerYear, ta.Tau)
	}
	printOnce("trends", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.PaperTrends(ds.Comparable, 0.10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnergyProportionality(b *testing.B) {
	ds := dataset(b)
	yearly := analysis.EPByYear(ds.Comparable)
	printOnce("ep", fmt.Sprintf("\n[EP] %d: %.3f → %d: %.3f\n",
		yearly[0].Year, yearly[0].Mean,
		yearly[len(yearly)-1].Year, yearly[len(yearly)-1].Mean))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.EPByYear(ds.Comparable)
	}
}

func BenchmarkConfoundingScan(b *testing.B) {
	ds := dataset(b)
	findings := analysis.ConfoundingScan(ds.Comparable, 2021)
	n := 0
	for _, f := range findings {
		if f.Confounded {
			n++
		}
	}
	printOnce("confound", fmt.Sprintf(
		"\n[CF] %d of %d feature pairs vendor-confounded since 2021\n", n, len(findings)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.ConfoundingScan(ds.Comparable, 2021)
	}
}

// BenchmarkClusterKMeans: one seeded k-means++ partition of the full
// comparable corpus (the "clusters" analysis minus the auto-k sweep).
func BenchmarkClusterKMeans(b *testing.B) {
	ds := dataset(b)
	m, err := cluster.Extract(ds.Comparable, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opt := cluster.KMeansOptions{K: 6, Seed: 14}
	res, err := cluster.KMeans(m, opt)
	if err != nil {
		b.Fatal(err)
	}
	sum := cluster.NewResult("kmeans++", m, res.Labels, res.K, 0)
	printOnce("cluster-kmeans", fmt.Sprintf(
		"\n[CL] k-means++ k=%d on %d runs: SSE=%.1f silhouette=%.3f sizes=%v\n",
		sum.K, len(m.Rows), sum.SSE, sum.Silhouette, sum.Sizes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(m, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterHAC: agglomerative clustering over a 256-run sample
// (the merge loop is O(n²) memory and worse time, so the sample keeps
// the regression signal without dominating the suite).
func BenchmarkClusterHAC(b *testing.B) {
	ds := dataset(b)
	sample := ds.Comparable[:min(256, len(ds.Comparable))]
	if len(sample) < 6 {
		b.Skipf("only %d comparable runs", len(sample))
	}
	m, err := cluster.Extract(sample, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, lk := range []cluster.Linkage{cluster.LinkageSingle, cluster.LinkageAverage} {
		b.Run(lk.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.HAC(m, cluster.HACOptions{Linkage: lk, K: 6}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSERTSuite(b *testing.B) {
	curve := power.Curve{
		FullWatts: 500,
		Prof: power.Profile{IdleFrac: 0.15, LowIntercept: 0.25, Beta: 0.85,
			TurboWeight: 0.25, TurboGamma: 3},
	}
	cfg := sert.DefaultConfig(2)
	cfg.IntervalDuration = 10 * time.Millisecond
	cfg.Intensities = []float64{1.0, 0.5}
	for i := 0; i < b.N; i++ {
		if _, err := sert.Run(cfg, sert.DefaultSuite(), ssj.NewSimMeter(curve, 0, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------------

// BenchmarkAblationRoundTrip (D1): analysing in-memory runs vs rendering
// to the result-file format and re-parsing first.
func BenchmarkAblationRoundTrip(b *testing.B) {
	ds := dataset(b)
	sample := ds.Comparable[:64]
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = analysis.Fig3OverallEfficiency(sample)
		}
	})
	b.Run("render-parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parsed := make([]*model.Run, len(sample))
			for j, r := range sample {
				p, err := parser.ParseString(report.RenderString(r))
				if err != nil {
					b.Fatal(err)
				}
				parsed[j] = p
			}
			_ = analysis.Fig3OverallEfficiency(parsed)
		}
	})
}

// BenchmarkAblationRowVsColumn (D2): computing a yearly mean through the
// columnar frame vs iterating row structs directly.
func BenchmarkAblationRowVsColumn(b *testing.B) {
	ds := dataset(b)
	b.Run("rows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = analysis.YearlyMeans(ds.Comparable, (*model.Run).OverallOpsPerWatt)
		}
	})
	b.Run("frame", func(b *testing.B) {
		fr := analysis.RunsFrame(ds.Comparable)
		g, err := fr.GroupBy("year")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.AggFloat("overall_eff", "mean", stats.Mean); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("frame-incl-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fr := analysis.RunsFrame(ds.Comparable)
			g, err := fr.GroupBy("year")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.AggFloat("overall_eff", "mean", stats.Mean); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationExtrapolationOrder (D3): the paper's two-point
// (10 %, 20 %) idle extrapolation vs a three-point least-squares fit.
func BenchmarkAblationExtrapolationOrder(b *testing.B) {
	ds := dataset(b)
	twoPoint := func(r *model.Run) float64 { return r.ExtrapolatedIdlePower() }
	threePoint := func(r *model.Run) float64 {
		p10, ok1 := r.Point(10)
		p20, ok2 := r.Point(20)
		p30, ok3 := r.Point(30)
		if !ok1 || !ok2 || !ok3 {
			return 0
		}
		fit, err := stats.LinReg(
			[]float64{10, 20, 30},
			[]float64{p10.AvgPower, p20.AvgPower, p30.AvgPower})
		if err != nil {
			return 0
		}
		return fit.Predict(0)
	}
	// Report the methodological sensitivity once.
	var deltas []float64
	for _, r := range ds.Comparable {
		a, c := twoPoint(r), threePoint(r)
		if a > 0 && c > 0 {
			deltas = append(deltas, (c-a)/a)
		}
	}
	printOnce("d3", fmt.Sprintf(
		"\n[D3] 3-point vs 2-point idle extrapolation: mean delta %.2f%%, p95 %.2f%%\n",
		100*stats.Mean(deltas), 100*stats.Quantile(deltas, 0.95)))
	b.Run("two-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range ds.Comparable {
				_ = twoPoint(r)
			}
		}
	})
	b.Run("three-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range ds.Comparable {
				_ = threePoint(r)
			}
		}
	})
}

// BenchmarkCorpusParallelism (D4): corpus render+write throughput as the
// worker count scales.
func BenchmarkCorpusParallelism(b *testing.B) {
	ds := dataset(b)
	sample := ds.Raw[:256]
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dir := filepath.Join(b.TempDir(), "c")
				if err := core.WriteCorpus(dir, sample, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingIngest (D6): corpus-directory ingestion through the
// streaming DirSource → DatasetBuilder pipeline (classification overlaps
// parsing, bounded memory) vs materializing every run before
// classifying.
func BenchmarkStreamingIngest(b *testing.B) {
	ds := dataset(b)
	dir := b.TempDir()
	if err := core.WriteCorpus(dir, ds.Raw[:256], 0); err != nil {
		b.Fatal(err)
	}
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := core.New(core.WithSource(core.DirSource{Dir: dir}))
			if _, err := eng.Dataset(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runs, err := core.LoadRuns(dir, 0)
			if err != nil {
				b.Fatal(err)
			}
			_ = analysis.BuildDataset(runs)
		}
	})
}

// BenchmarkEngineRunFullReport (D7): every registered analysis through
// Engine.Run, scheduled sequentially (workers=1) vs fanned out across
// the worker pool. The parallel schedule costs max(analysis) wall-clock
// instead of sum(analysis); each iteration uses a fresh engine so
// nothing is served from the memo cache. Caveat: the paper's mix is
// dominated by the trends analysis, which parallelizes internally
// (GOMAXPROCS) in both arms, so the scheduling delta here understates
// the win — BenchmarkEngineRunScheduling isolates it with equal-cost,
// internally-serial analyses.
func BenchmarkEngineRunFullReport(b *testing.B) {
	raw := dataset(b).Raw
	for _, bc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := core.New(core.WithSource(core.SliceSource(raw)),
					core.WithWorkers(bc.workers))
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The scheduling probes are eight equal-cost analyses (a quadratic
// Sen-slope scan each), registered once per process: with equal costs,
// a sequential schedule pays sum(analysis) while the parallel one pays
// max(analysis), isolating the scheduler from the paper's skewed
// analysis mix.
var benchLoadOnce sync.Once

const benchLoads = 8

func registerBenchLoads() {
	benchLoadOnce.Do(func() {
		for i := 0; i < benchLoads; i++ {
			analysis.Register(fmt.Sprintf("bench_load_%d", i),
				"equal-cost scheduling probe (benchmark only)",
				func(ds *analysis.Dataset) (any, error) {
					xs := make([]float64, 0, len(ds.Comparable))
					ys := make([]float64, 0, len(ds.Comparable))
					for _, r := range ds.Comparable {
						xs = append(xs, r.HWAvail.Frac())
						ys = append(ys, r.OverallOpsPerWatt())
					}
					v, err := stats.SenSlope(xs, ys)
					return v, err
				})
		}
	})
}

// BenchmarkEngineRunScheduling (D9): Engine.Run over the eight probes,
// sequential vs fanned out.
func BenchmarkEngineRunScheduling(b *testing.B) {
	registerBenchLoads()
	raw := dataset(b).Raw
	names := make([]string, benchLoads)
	for i := range names {
		names[i] = fmt.Sprintf("bench_load_%d", i)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := core.New(core.WithSource(core.SliceSource(raw)),
					core.WithWorkers(bc.workers))
				if _, err := eng.Run(names...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCachedIngest (D8): corpus-directory ingestion cold through
// the text parser (DirSource) vs warm through the gob parse cache
// (CachedSource after one priming pass), which skips parsing entirely.
func BenchmarkCachedIngest(b *testing.B) {
	ds := dataset(b)
	dir := b.TempDir()
	if err := core.WriteCorpus(dir, ds.Raw[:256], 0); err != nil {
		b.Fatal(err)
	}
	b.Run("cold-dir", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := core.New(core.WithSource(core.DirSource{Dir: dir}))
			if _, err := eng.Dataset(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		src := core.CachedSource{Dir: dir}
		if _, err := core.New(core.WithSource(src)).Dataset(); err != nil {
			b.Fatal(err) // priming pass writes the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := core.New(core.WithSource(src))
			if _, err := eng.Dataset(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeAnalysis (D10): one analysis request through the HTTP
// serving stack. cold-scope pays for everything — engine build, corpus
// ingestion, the analysis itself — on a fresh server each iteration;
// warm-scope hits a resident scope engine, so the request is a memo
// read plus JSON encoding (≥10× faster than cold); warm-etag-304
// revalidates with If-None-Match and transfers nothing at all.
// warm-scope runs with tracing explicitly off so the traced variant
// below measures the overhead against a clean baseline.
func BenchmarkServeAnalysis(b *testing.B) {
	newServer := func() *serve.Server {
		return serve.New(serve.Config{
			Base:            core.SynthSource{Options: synth.DefaultOptions()},
			TraceBufferSize: -1,
		})
	}
	request := func(b *testing.B, srv *serve.Server, etag string) *httptest.ResponseRecorder {
		b.Helper()
		req := httptest.NewRequest(http.MethodGet, "/v1/analyses/fig3", nil)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}
	b.Run("cold-scope", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rec := request(b, newServer(), ""); rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	b.Run("warm-scope", func(b *testing.B) {
		srv := newServer()
		if rec := request(b, srv, ""); rec.Code != http.StatusOK {
			b.Fatalf("priming status %d", rec.Code)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec := request(b, srv, ""); rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	b.Run("warm-etag-304", func(b *testing.B) {
		srv := newServer()
		prime := request(b, srv, "")
		etag := prime.Header().Get("ETag")
		if prime.Code != http.StatusOK || etag == "" {
			b.Fatalf("priming status %d etag %q", prime.Code, etag)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec := request(b, srv, etag); rec.Code != http.StatusNotModified {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	// warm-scope-traced bounds the tracing hot path: the same warm
	// request with the default trace ring on, so every 200 builds a span
	// tree (root, queue_wait, build, serialize — warm requests skip
	// ingest and compute) and publishes it to the ring. The acceptance
	// criteria cap the delta over warm-scope at 5%.
	b.Run("warm-scope-traced", func(b *testing.B) {
		srv := serve.New(serve.Config{
			Base: core.SynthSource{Options: synth.DefaultOptions()},
		})
		if rec := request(b, srv, ""); rec.Code != http.StatusOK {
			b.Fatalf("priming status %d", rec.Code)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec := request(b, srv, ""); rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	// warm-scope-evlog bounds the event-log hot path: the same warm
	// request (tracing off, matching the warm-scope baseline) with the
	// structured event log on, so every request encodes and writes one
	// logfmt line — method, path, status, status_class, etag_revalidated,
	// bytes, dur, trace_id. The acceptance criteria cap the delta over
	// warm-scope at 2%; interleave the two arms (-count N) to measure it
	// in-process.
	b.Run("warm-scope-evlog", func(b *testing.B) {
		srv := serve.New(serve.Config{
			Base:            core.SynthSource{Options: synth.DefaultOptions()},
			TraceBufferSize: -1,
			Events:          evlog.New(io.Discard, evlog.Options{}),
		})
		if rec := request(b, srv, ""); rec.Code != http.StatusOK {
			b.Fatalf("priming status %d", rec.Code)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec := request(b, srv, ""); rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	// warm-scope-audit bounds the audit hot path: the same warm request
	// with every 200 appending a hash-chained record. The append is a
	// channel send — batching and file I/O happen on the writer goroutine
	// — so the delta over warm-scope is the per-request audit cost the
	// acceptance criteria cap (no per-request fsync).
	b.Run("warm-scope-audit", func(b *testing.B) {
		audit, err := obs.OpenAuditLog(filepath.Join(b.TempDir(), "audit.log"), obs.AuditOptions{})
		if err != nil {
			b.Fatal(err)
		}
		srv := serve.New(serve.Config{
			Base:            core.SynthSource{Options: synth.DefaultOptions()},
			Audit:           audit,
			TraceBufferSize: -1, // isolate the audit delta from the trace delta
		})
		if rec := request(b, srv, ""); rec.Code != http.StatusOK {
			b.Fatalf("priming status %d", rec.Code)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec := request(b, srv, ""); rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
		b.StopTimer()
		if err := audit.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkParamMemoization (D11): one parameterized clusters request
// (k=4, no auto-k sweep) through Engine.RunRequests. cold pays for
// everything on a fresh engine each iteration — ingestion plus the
// clustering itself; warm-hit repeats the identical request against a
// resident engine, so it is a memo read (the canonical param string is
// the cache key); warm-miss asks a resident engine for a fresh
// parameterization (a new seed every iteration), isolating the
// incremental cost of one more scenario: the clustering, but no
// re-ingestion.
func BenchmarkParamMemoization(b *testing.B) {
	reg, ok := analysis.Lookup("clusters")
	if !ok {
		b.Fatal("clusters not registered")
	}
	resolve := func(b *testing.B, raw map[string]string) core.Request {
		params, err := reg.Params.Resolve(raw)
		if err != nil {
			b.Fatal(err)
		}
		return core.Request{Name: "clusters", Params: params}
	}
	req := resolve(b, map[string]string{"k": "4"})
	raw := dataset(b).Raw
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := core.New(core.WithSource(core.SliceSource(raw)))
			if _, err := eng.RunRequests(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-hit", func(b *testing.B) {
		eng := core.New(core.WithSource(core.SliceSource(raw)))
		if _, err := eng.RunRequests(req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunRequests(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-miss", func(b *testing.B) {
		eng := core.New(core.WithSource(core.SliceSource(raw)))
		if _, err := eng.RunRequests(req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fresh := resolve(b, map[string]string{"k": "4", "seed": fmt.Sprint(100 + i)})
			if _, err := eng.RunRequests(fresh); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCorpusGeneration measures full 1017-run corpus synthesis.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(synth.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseResultFile measures single-file parsing.
func BenchmarkParseResultFile(b *testing.B) {
	ds := dataset(b)
	text := report.RenderString(ds.Comparable[0])
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.ParseString(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMeterPath (D5): one measured ssj interval through the
// in-process meter vs the ptdaemon TCP protocol.
func BenchmarkAblationMeterPath(b *testing.B) {
	curve := power.Curve{
		FullWatts: 500,
		Prof: power.Profile{IdleFrac: 0.2, LowIntercept: 0.3, Beta: 0.85,
			TurboWeight: 0.25, TurboGamma: 3},
	}
	runOne := func(b *testing.B, meter ssj.Meter) {
		cfg := ssj.DefaultConfig(2)
		cfg.IntervalDuration = 5 * time.Millisecond
		cfg.CalibrationIntervals = 1
		cfg.LoadLevels = []int{100}
		engine, err := ssj.NewEngine(cfg, meter)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("in-process", func(b *testing.B) {
		runOne(b, ssj.NewSimMeter(curve, 0, 1))
	})
	b.Run("ptd-tcp", func(b *testing.B) {
		var tracker ptd.LoadTracker
		server, err := ptd.NewServer(ptd.CurveSource(curve, &tracker), time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		addr, err := server.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer server.Close()
		client, err := ptd.Dial(addr, &tracker, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		runOne(b, client)
	})
}

// TestMain keeps benchmark output and the normal test runner compatible.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
