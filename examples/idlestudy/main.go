// Idlestudy reproduces the paper's Section IV: the active-idle power
// trend (Figure 5) and the extrapolated idle quotient (Figure 6),
// including the HPC-motivated interpretation — how much energy
// idle-specific optimizations (package C-states) save on a node that
// spends part of its life waiting for batch jobs.
//
//	go run ./examples/idlestudy
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	log.SetFlags(0)
	ds, err := core.New().Dataset()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Idle fraction and extrapolated idle quotient by year:")
	fmt.Printf("%-6s %4s  %-22s %-22s\n", "year", "n", "idle/full (mean)", "quotient (mean)")
	frac := analysis.YearlyMeans(ds.Comparable, (*model.Run).IdleFraction)
	quot := analysis.YearlyMeans(ds.Comparable, (*model.Run).ExtrapolatedIdleQuotient)
	quotByYear := map[int]analysis.YearlyStat{}
	for _, q := range quot {
		quotByYear[q.Year] = q
	}
	for _, f := range frac {
		q := quotByYear[f.Year]
		fmt.Printf("%-6d %4d  %-22s %-22s\n", f.Year, f.N,
			bar(f.Mean, 0.8, 20), bar(q.Mean-1, 1.5, 20))
	}

	// The HPC cost model: a node that idles h hours/day wastes
	// (idle power) × h; idle-specific optimization reduces that from the
	// extrapolated to the measured level.
	fmt.Println("\nEnergy saved by idle-specific optimization (8 idle hours/day, one year):")
	type saving struct {
		id    string
		cpu   string
		watts float64 // extrapolated − measured idle
		kwh   float64
	}
	var savings []saving
	for _, r := range ds.Comparable {
		if r.HWAvail.Year < 2021 {
			continue
		}
		d := r.ExtrapolatedIdlePower() - r.IdlePower()
		savings = append(savings, saving{
			id: r.ID, cpu: r.CPUName, watts: d,
			kwh: d * 8 * 365 / 1000,
		})
	}
	sort.Slice(savings, func(i, j int) bool { return savings[i].kwh > savings[j].kwh })
	for i, s := range savings {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-34s saves %6.0f W idle → %7.0f kWh/year\n", s.cpu, s.watts, s.kwh)
	}
	if len(savings) > 5 {
		worst := savings[len(savings)-1]
		fmt.Printf("  … worst recent system (%s) saves only %.0f W — the paper's\n"+
			"  warning that idle optimization is no longer universal.\n",
			worst.cpu, worst.watts)
	}
}

// bar renders v on a [0,max] scale as a text gauge with the value.
func bar(v, max float64, width int) string {
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	out := make([]byte, width)
	for i := range out {
		if i < n {
			out[i] = '#'
		} else {
			out[i] = '.'
		}
	}
	return fmt.Sprintf("%s %.3f", out, v)
}
