// Proportionality reproduces the paper's Figure 4 discussion: energy
// proportionality via relative efficiency per load level, contrasting a
// 2007 system, a 2014 Intel system (turbo-inflated >1 region), and a
// 2023 AMD system (near-proportional) — then prints the full per-vendor
// yearly distribution.
//
//	go run ./examples/proportionality
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/power"
)

func main() {
	log.SetFlags(0)

	// Model-level view: the power curves that produce the Figure 4
	// pattern, straight from the trend model.
	fmt.Println("Relative efficiency u/rel(u) from the vendor trend curves:")
	fmt.Printf("%-26s", "load")
	for _, u := range []int{10, 30, 50, 70, 90, 100} {
		fmt.Printf("%7d%%", u)
	}
	fmt.Println()
	show := func(label string, v model.CPUVendor, year float64) {
		p := power.TrendProfile(v, year)
		fmt.Printf("%-26s", label)
		for _, load := range []int{10, 30, 50, 70, 90, 100} {
			u := float64(load) / 100
			fmt.Printf("%8.2f", u/p.Rel(u))
		}
		fmt.Println()
	}
	show("2007 (any vendor)", model.VendorIntel, 2007)
	show("2014 Intel (turbo era)", model.VendorIntel, 2014)
	show("2019 AMD (pre-Milan)", model.VendorAMD, 2019)
	show("2023 AMD (near-prop.)", model.VendorAMD, 2023)

	// Corpus-level view: Figure 4's distributions.
	eng := core.New()
	cells, err := core.AnalysisAs[[]analysis.Fig4Cell](eng, "fig4")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nMedian relative efficiency at 70 % load, by vendor and year:")
	fmt.Printf("%-6s %10s %10s\n", "year", "AMD", "Intel")
	byYear := map[int]map[string]float64{}
	years := []int{}
	for _, c := range cells {
		if c.Load != 70 {
			continue
		}
		if byYear[c.Year] == nil {
			byYear[c.Year] = map[string]float64{}
			years = append(years, c.Year)
		}
		byYear[c.Year][c.Vendor] = c.Box.Median
	}
	for _, y := range years {
		amd, intel := "-", "-"
		if v, ok := byYear[y]["AMD"]; ok {
			amd = fmt.Sprintf("%.3f", v)
		}
		if v, ok := byYear[y]["Intel"]; ok {
			intel = fmt.Sprintf("%.3f", v)
		}
		fmt.Printf("%-6d %10s %10s\n", y, amd, intel)
	}
	fmt.Println("\n(1.000 = energy proportional; the paper's findings: early years " +
		"well below 1, Intel above 1 in 2012–2016, both near 1 with wide spread after 2021)")
}
