// Vendorduel reproduces the paper's Table I: the Lenovo SR650 V3
// (2× Intel Xeon Platinum 8490H) against the SR645 V3 (2× AMD EPYC
// 9754) across SPEC Power and SPEC CPU 2017 Rate — and then runs the
// *actual* ssj workload engine over the ptdaemon TCP protocol for both
// systems to demonstrate the live measurement path.
//
//	go run ./examples/vendorduel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/power"
	"repro/internal/ptd"
	"repro/internal/speccpu"
	"repro/internal/ssj"
)

func main() {
	log.SetFlags(0)

	intelSys, amdSys, err := speccpu.DefaultDuel()
	if err != nil {
		log.Fatal(err)
	}
	rows, err := speccpu.Table1(intelSys, amdSys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I (modeled):")
	fmt.Printf("%-36s %10s %10s %8s %8s\n", "Benchmark", "Intel", "AMD", "Factor", "Paper")
	paper := []float64{2.09, 1.53, 2.03}
	for i, r := range rows {
		fmt.Printf("%-36s %10.0f %10.0f %8.2f %8.2f\n",
			r.Benchmark, r.Intel, r.AMD, r.Factor, paper[i])
	}

	// Live measurement path: run the ssj engine for each system with its
	// power curve behind a ptdaemon server, and compare the measured
	// relative efficiency at 70 % load.
	fmt.Println("\nLive ssj runs through the ptdaemon protocol:")
	for _, sys := range []speccpu.DuelSystem{intelSys, amdSys} {
		curve, err := power.NewCurve(sys.CPU, power.SystemConfig{
			Sockets: sys.Sockets, MemGB: sys.MemGB,
		})
		if err != nil {
			log.Fatal(err)
		}
		var tracker ptd.LoadTracker
		server, err := ptd.NewServer(ptd.CurveSource(curve, &tracker), 2*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		addr, err := server.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		meter, err := ptd.Dial(addr, &tracker, time.Second)
		if err != nil {
			log.Fatal(err)
		}

		cfg := ssj.DefaultConfig(4)
		cfg.IntervalDuration = 60 * time.Millisecond
		cfg.LoadLevels = []int{100, 70, 40, 10}
		engine, err := ssj.NewEngine(cfg, meter)
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run()
		if err != nil {
			log.Fatal(err)
		}
		full, _ := pointAt(res, 100)
		p70, _ := pointAt(res, 70)
		idle, _ := pointAt(res, 0)
		relEff := (p70.ActualOps / p70.AvgPower) / (full.ActualOps / full.AvgPower)
		fmt.Printf("  %-40s full %6.0f W | 70%% %6.0f W (rel eff %.2f) | idle %5.0f W\n",
			sys.Label, full.AvgPower, p70.AvgPower, relEff, idle.AvgPower)

		meter.Close()
		server.Close()
	}
	fmt.Println("\n(integer-heavy ssj favours AMD ×≈2.1; AVX-512 halves the gap for FP rate)")
}

func pointAt(res *ssj.Result, load int) (p struct {
	ActualOps, AvgPower float64
}, ok bool) {
	for _, lp := range res.Points {
		if lp.TargetLoad == load {
			return struct{ ActualOps, AvgPower float64 }{lp.ActualOps, lp.AvgPower}, true
		}
	}
	return p, false
}
