// Quickstart: generate the calibrated corpus, run the paper's filter
// funnel, and print the headline numbers of each analysis.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// 1. The corpus: 1017 synthetic SPECpower_ssj2008 results calibrated
	//    to the published dataset's statistics.
	runs, err := core.GenerateCorpus(synth.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	study := core.NewStudy(runs)
	ds := study.Dataset

	// 2. The funnel: 1017 → 960 parsed → 676 comparable.
	fmt.Print(ds.Funnel)

	// 3. Headline trends.
	growth := analysis.PowerGrowth(ds.Comparable)
	fmt.Printf("\nfull-load power per socket: %.1f W (≤2010) → %.1f W (≥2022), ×%.2f\n",
		growth[0].EarlyMean, growth[0].LateMean, growth[0].Factor)

	eff := analysis.Fig3OverallEfficiency(ds.Comparable)
	first, last := eff.Yearly[0], eff.Yearly[len(eff.Yearly)-1]
	fmt.Printf("overall efficiency: %.0f ssj_ops/W (%d) → %.0f ssj_ops/W (%d)\n",
		first.Mean, first.Year, last.Mean, last.Year)

	top := analysis.TopEfficient(ds.Comparable, 100)
	fmt.Printf("top-100 most efficient runs: %d AMD, %d Intel\n",
		top.ByVendor["AMD"], top.ByVendor["Intel"])

	idle := analysis.IdleFractionHistory(ds.Comparable, 5)
	fmt.Printf("idle fraction: %.1f %% (%d) → %.1f %% (%d, minimum) → %.1f %% (%d)\n",
		100*idle.FirstYearMean, idle.FirstYear,
		100*idle.MinYearMean, idle.MinYear,
		100*idle.LastYearMean, idle.LastYear)
}
