// Quickstart: build a streaming Engine over the calibrated synthetic
// corpus, run the paper's filter funnel, and print the headline numbers
// of each analysis — some through typed accessors, some through the
// named analysis registry.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	// 1. The engine. With no options it streams the default synthetic
	//    corpus: 1017 SPECpower_ssj2008 results calibrated to the
	//    published dataset's statistics. Nothing is generated or
	//    classified until the first analysis asks for the dataset, and
	//    each analysis is computed at most once per engine.
	eng := core.New()

	// 2. The funnel: 1017 → 960 parsed → 676 comparable.
	ds, err := eng.Dataset()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ds.Funnel)

	// 3. Headline trends, by registry name. AnalysisAs asserts the
	//    result type; eng.Run / eng.WriteJSON return the same values
	//    untyped for generic output.
	growth, err := core.AnalysisAs[[]analysis.GrowthFactor](eng, "growth")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-load power per socket: %.1f W (≤2010) → %.1f W (≥2022), ×%.2f\n",
		growth[0].EarlyMean, growth[0].LateMean, growth[0].Factor)

	eff, err := core.AnalysisAs[analysis.TrendFigure](eng, "fig3")
	if err != nil {
		log.Fatal(err)
	}
	first, last := eff.Yearly[0], eff.Yearly[len(eff.Yearly)-1]
	fmt.Printf("overall efficiency: %.0f ssj_ops/W (%d) → %.0f ssj_ops/W (%d)\n",
		first.Mean, first.Year, last.Mean, last.Year)

	top, err := core.AnalysisAs[analysis.TopEfficiency](eng, "top100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-100 most efficient runs: %d AMD, %d Intel\n",
		top.ByVendor["AMD"], top.ByVendor["Intel"])

	idle, err := core.AnalysisAs[analysis.IdleFractionStats](eng, "idlehistory")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("idle fraction: %.1f %% (%d) → %.1f %% (%d, minimum) → %.1f %% (%d)\n",
		100*idle.FirstYearMean, idle.FirstYear,
		100*idle.MinYearMean, idle.MinYear,
		100*idle.LastYearMean, idle.LastYear)
}
