// Cstates illustrates the mechanism story of the paper's Section IV:
// how package C-state residency explains the idle-power history — deep
// shared-resource sleep arriving between 2006 and 2017, and growing
// background activity (one timer tick per logical CPU…) eroding it
// afterwards — and how the Pettitt test dates the regime change in the
// corpus.
//
//	go run ./examples/cstates
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/power"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Modelled active-idle decomposition (Intel trend):")
	fmt.Printf("%-6s %10s %10s %10s %12s\n",
		"year", "C0 busy", "core sleep", "pkg sleep", "idle/full")
	for _, y := range []float64{2006, 2010, 2014, 2017, 2020, 2024} {
		cs := power.CStatesFor(model.VendorIntel, y)
		fmt.Printf("%-6.0f %9.0f%% %9.0f%% %9.0f%% %11.1f%%\n",
			y, 100*cs.ResidencyC0, 100*cs.ResidencyCoreC,
			100*cs.ResidencyPkgC, 100*cs.IdleFrac())
	}

	eng := core.New()
	ds, err := eng.Dataset()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nCorpus idle-fraction history and its changepoint:")
	for _, ys := range analysis.YearlyMeans(ds.Comparable, (*model.Run).IdleFraction) {
		fmt.Printf("  %d  %5.1f %%  (n=%d)\n", ys.Year, 100*ys.Mean, ys.N)
	}
	cf, err := core.AnalysisAs[analysis.ChangepointFinding](eng, "changepoint")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPettitt test: the idle-power regime changes after %d (p = %.4f).\n",
		cf.Year, cf.P)
	fmt.Println("The paper dates the minimum to 2017 and attributes the regression to")
	fmt.Println("exactly the two effects the decomposition above shows: cheaper package")
	fmt.Println("sleep (falling pkg-sleep power) vs. more background activity (rising C0).")
}
