// Command sertrun executes the miniature SERT suite against a simulated
// system: every worklet (CPU, memory, storage domains) at its intensity
// ladder, measured through the power model, aggregated into domain and
// overall efficiency scores.
//
// Usage:
//
//	sertrun -cpu "EPYC 9654" [-sockets 2] [-mem 384] [-interval 100ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/power"
	"repro/internal/sert"
	"repro/internal/ssj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sertrun: ")
	cpuName := flag.String("cpu", "EPYC 9654", "catalog CPU to simulate (substring match)")
	sockets := flag.Int("sockets", 2, "populated sockets")
	memGB := flag.Int("mem", 384, "configured memory (GB)")
	interval := flag.Duration("interval", 100*time.Millisecond, "measurement interval length")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines per worklet")
	flag.Parse()

	spec, err := catalog.Find(*cpuName)
	if err != nil {
		log.Fatal(err)
	}
	curve, err := power.NewCurve(spec, power.SystemConfig{Sockets: *sockets, MemGB: *memGB})
	if err != nil {
		log.Fatal(err)
	}
	meter := ssj.NewSimMeter(curve, 0.01, 1)

	cfg := sert.DefaultConfig(*workers)
	cfg.IntervalDuration = *interval
	log.Printf("running SERT suite on %s (%d sockets, %d GB)", spec.Name, *sockets, *memGB)
	res, err := sert.Run(cfg, sert.DefaultSuite(), meter)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %-8s %10s %10s %10s %8s\n",
		"worklet", "domain", "intensity", "ops/s", "watts", "eff")
	for _, wr := range res.Worklets {
		for _, lv := range wr.Levels {
			fmt.Printf("%-14s %-8s %9.0f%% %10.0f %10.1f %8.2f\n",
				wr.Name, wr.Domain, 100*lv.Intensity, lv.OpsPerSec, lv.AvgWatts, lv.Efficiency)
		}
		fmt.Printf("%-14s %-8s %41s score %.3f\n", "", "", "", wr.Score)
	}
	fmt.Println()
	// Sorted so the domain table prints in a stable order — DomainScores
	// is a map, and iteration order must not reach the output.
	domains := make([]sert.Domain, 0, len(res.DomainScores))
	for d := range res.DomainScores {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool { return domains[i] < domains[j] })
	for _, d := range domains {
		fmt.Printf("domain %-8s score %.3f (weight %.0f%%)\n", d, res.DomainScores[d], 100*sert.DomainWeights[d])
	}
	fmt.Printf("overall SERT efficiency score: %.3f\n", res.Overall)
}
