// Command speclint validates SPECpower_ssj2008 result files the way the
// paper's ingestion pipeline does: each file is parsed and classified,
// and the verdict (accepted for analysis, or the first failing check)
// is reported per file, with a funnel summary at the end.
//
// Usage:
//
//	speclint corpus/*.txt
//	speclint -dir corpus/ [-quiet]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/parser"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("speclint: ")
	dir := flag.String("dir", "", "lint every .txt file in this directory")
	quiet := flag.Bool("quiet", false, "only print the summary")
	flag.Parse()

	paths := flag.Args()
	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
				paths = append(paths, filepath.Join(*dir, e.Name()))
			}
		}
	}
	if len(paths) == 0 {
		log.Fatal("no input files (pass paths or -dir)")
	}
	sort.Strings(paths)

	counts := map[string]int{}
	unparseable := 0
	for _, path := range paths {
		verdict := lint(path)
		counts[verdict]++
		if verdict == "unparseable" {
			unparseable++
		}
		if !*quiet {
			fmt.Printf("%-52s %s\n", filepath.Base(path), verdict)
		}
	}

	fmt.Printf("\n%d files\n", len(paths))
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-46s %4d\n", k, counts[k])
	}
	if unparseable > 0 {
		os.Exit(1)
	}
}

func lint(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return "unparseable"
	}
	defer f.Close()
	run, err := parser.Parse(f)
	if err != nil {
		return "unparseable"
	}
	if rr := model.Classify(run); rr != model.RejectNone {
		return rr.String()
	}
	return "ok (comparable)"
}
