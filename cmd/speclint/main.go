// Command speclint validates SPECpower_ssj2008 result files the way the
// paper's ingestion pipeline does: each file is parsed and classified,
// and the verdict (accepted for analysis, or the first failing check)
// is reported per file, with the paper's filter-funnel accounting as
// the summary. Classification goes through the same incremental
// analysis.DatasetBuilder that core.Engine uses for streaming ingest.
//
// Usage:
//
//	speclint corpus/*.txt
//	speclint -dir corpus/ [-quiet]
//
// -dir lists files through core.ListResultFiles — the exact listing
// DirSource ingests (recursive, case-insensitive .txt match) — so the
// linter's verdicts always cover the corpus the engine would analyze.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/parser"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("speclint: ")
	dir := flag.String("dir", "", "lint every .txt file in this directory")
	quiet := flag.Bool("quiet", false, "only print the summary")
	flag.Parse()

	paths := flag.Args()
	if *dir != "" {
		// The same listing DirSource ingests from: recursive,
		// case-insensitive on the extension. Anything else and the
		// linter's verdicts would cover a different corpus than the
		// engine analyzes (top-level lowercase .txt only, once).
		listed, err := core.ListResultFiles(*dir)
		if err != nil {
			log.Fatal(err)
		}
		paths = append(paths, listed...)
	}
	if len(paths) == 0 {
		log.Fatal("no input files (pass paths or -dir)")
	}
	sort.Strings(paths)

	builder := analysis.NewDatasetBuilder()
	unparseable := 0
	for _, path := range paths {
		verdict := "ok (comparable)"
		run, err := parse(path)
		if err != nil {
			verdict = "unparseable"
			unparseable++
		} else if rr := builder.Add(run); rr != model.RejectNone {
			verdict = rr.String()
		}
		if !*quiet {
			fmt.Printf("%-52s %s\n", filepath.Base(path), verdict)
		}
	}

	fmt.Printf("\n%d files (%d unparseable)\n", len(paths), unparseable)
	fmt.Print(builder.Funnel().String())
	if unparseable > 0 {
		os.Exit(1)
	}
}

func parse(path string) (*model.Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parser.Parse(f)
}
