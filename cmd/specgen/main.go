// Command specgen generates the synthetic SPECpower_ssj2008 corpus as
// individual result files, the stand-in for downloading the 1017
// published reports from spec.org.
//
// Usage:
//
//	specgen -out corpus/ [-seed 14] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specgen: ")
	out := flag.String("out", "corpus", "output directory for .txt result files")
	seed := flag.Int64("seed", synth.DefaultSeed, "corpus generation seed")
	workers := flag.Int("workers", 0, "parallel writers (0 = GOMAXPROCS)")
	flag.Parse()

	eng := core.New(core.WithSeed(*seed))
	runs, err := eng.Runs()
	if err != nil {
		log.Fatal(err)
	}
	if err := core.WriteCorpus(*out, runs, *workers); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stdout, "wrote %d result files to %s (seed %d)\n",
		len(runs), *out, *seed)
}
