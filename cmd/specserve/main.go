// Command specserve serves the analysis registry over HTTP: a
// long-running daemon over the same corpus flags as specanalyze
// (internal/cliutil), exposing
//
//	GET /healthz                      liveness
//	GET /metrics                      Prometheus text exposition
//	GET /v1/analyses                  registry listing with parameter schemas
//	GET /v1/analyses/{name}?filter=   one analysis over a corpus slice
//	GET /v1/report?filter=            the full text report
//	GET /v1/stats                     serving metrics (JSON, stage/analysis latency breakdowns)
//	GET /v1/pool                      engine-pool introspection (resident scopes, cache counters)
//	GET /v1/traces                    recent request traces (?n= count, ?min_ms= slow filter)
//	POST /v1/runs                     append one result file to the live corpus (-live/-watch only)
//	GET /debug/pprof/                 runtime profiles (-pprof only, loopback clients only)
//
// Each distinct ?filter= scope gets its own lazily built, memoized
// engine from an LRU-bounded pool (single-flight construction, shared
// ingestion). Analyses with declared parameters take them as further
// query keys (/v1/analyses/clusters?filter=vendor=amd&k=5), validated
// against the registered schema — bad input is a 400 with the schema
// echoed — and each parameterization is memoized and ETagged
// independently, so repeat traffic is answered 304 Not Modified
// without recomputation — see internal/serve.
// The -filter flag pre-slices the corpus every request sees;
// per-request ?filter= expressions compose on top of it.
//
// With -audit FILE, every attributable 200 (analysis and report
// responses) appends a hash-chained provenance record — timestamp,
// corpus fingerprint, analysis, canonical params, digest of the served
// bytes — to FILE via a batching writer that never blocks the request
// path on I/O. Verify the chain with `specaudit verify FILE`.
//
// Every request is traced by default: the server keeps the most recent
// completed span trees in a bounded in-memory ring (-trace-buf, 0
// disables) served by GET /v1/traces, echoes a W3C Traceparent response
// header (adopting an inbound one), and with -trace-slow D logs one
// line per request slower than D carrying its trace id. -pprof
// additionally mounts net/http/pprof for loopback clients.
//
// With -live, the corpus becomes appendable while serving: POST
// /v1/runs takes one result-file body, folds the parsed run into every
// resident scope engine through the delta path (no rebuilds), and
// bumps the corpus generation — every scope's ETag rolls exactly then,
// so clients revalidating with If-None-Match see 304s until the corpus
// actually grows and a full 200 immediately after. -watch additionally
// polls the directory -in corpora (every -watch-interval): new result
// files are absorbed like POSTed runs, while modified or deleted files
// — changes an append cannot express — reset the engine pool so every
// scope rebuilds from the changed directory. Generation and append
// counters surface in /v1/stats, /v1/pool, and /metrics
// (specserve_generation, specserve_appends_total).
//
// Usage:
//
//	specserve [-addr :8080] [-in corpus/]... [-cache] [-workers 8]
//	          [-filter expr] [-pool 32] [-max-inflight 64] [-warm]
//	          [-live] [-watch] [-watch-interval 2s]
//	          [-audit audit.log] [-trace-buf 256] [-trace-slow 500ms]
//	          [-pprof] [-log-format text|logfmt|json]
//
// -log-format selects the log encoding: text (default) preserves the
// historical one-line request log byte-for-byte; logfmt and json emit
// one structured event per line to stderr — every request event carries
// its trace_id, status_class, and etag_revalidated, and the state-plane
// machinery (engine pool, audit batcher) logs its lifecycle (pool_build
// with single-flight join counts, pool_evict with reasons, audit_flush)
// through the same stream. Watch it live with `spectop`.
//
// The server drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM; the audit log is flushed and closed as part of the drain.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/evlog"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", serve.DefaultPoolSize, "max resident scope engines (LRU-evicted beyond)")
	inflight := flag.Int("max-inflight", serve.DefaultMaxInFlight, "max concurrently served requests")
	warm := flag.Bool("warm", false, "ingest the whole-corpus scope before accepting traffic")
	liveOn := flag.Bool("live", false, "enable live ingestion: POST /v1/runs appends result files to the corpus")
	watch := flag.Bool("watch", false, "poll directory -in corpora for new result files and absorb them (implies -live)")
	watchInterval := flag.Duration("watch-interval", 2*time.Second, "poll cadence for -watch")
	auditPath := flag.String("audit", "", "append hash-chained audit records to this file (verify with specaudit)")
	traceBuf := flag.Int("trace-buf", serve.DefaultTraceBuffer, "completed request traces kept for /v1/traces (0 disables tracing)")
	traceSlow := flag.Duration("trace-slow", 0, "log requests slower than this duration with their trace id (0 disables)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof for loopback clients")
	logFormat := flag.String("log-format", "text",
		"request/event log format: text (legacy one-line), logfmt, or json")
	corpus := cliutil.RegisterCorpusFlags(flag.CommandLine)
	flag.Parse()

	// "text" keeps the historical one-line request log byte-for-byte;
	// logfmt/json switch to the structured event log (trace_id on every
	// request line, state-plane pool/cache/audit events).
	var (
		logf   func(format string, args ...any)
		events *evlog.Logger
	)
	switch *logFormat {
	case "text":
		logf = log.Printf
	default:
		enc, err := evlog.ParseEncoding(*logFormat)
		if err != nil {
			log.Fatalf("-log-format: %v", err)
		}
		events = evlog.New(os.Stderr, evlog.Options{Encoding: enc})
	}

	src, err := corpus.Source()
	if err != nil {
		log.Fatal(err)
	}
	watchDirs := corpus.Dirs()
	if *watch && len(watchDirs) == 0 {
		log.Fatal("-watch needs at least one directory -in to poll")
	}
	var audit *obs.AuditLog
	if *auditPath != "" {
		audit, err = obs.OpenAuditLog(*auditPath, obs.AuditOptions{Events: events})
		if err != nil {
			// A log that fails chain verification refuses to open —
			// appending would bury the evidence. Operators keep the bad
			// file for forensics and point -audit somewhere fresh.
			log.Fatal(err)
		}
		log.Printf("auditing to %s (%d existing records)", *auditPath, audit.Records())
	}
	// The flag's 0-disables convention is friendlier than the Config's
	// negative sentinel (0 keeps the zero-valued Config meaning "default
	// ring" for library users).
	bufSize := *traceBuf
	if bufSize <= 0 {
		bufSize = -1
	}
	srv := serve.New(serve.Config{
		Base:            src,
		Live:            *liveOn || *watch,
		Workers:         corpus.Workers,
		PoolSize:        *pool,
		MaxInFlight:     *inflight,
		Logf:            logf,
		Audit:           audit,
		Events:          events,
		TraceBufferSize: bufSize,
		SlowTrace:       *traceSlow,
		Pprof:           *pprofOn,
	})
	if *warm {
		log.Printf("warming corpus %s", src.Name())
		if err := srv.Warm(); err != nil {
			log.Fatal(err)
		}
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *watch {
		// The watcher polls the directory corpora on a real ticker (the
		// injectable clock stays inside internal/live for tests) and
		// routes each delta through the cheapest absorption the serving
		// layer offers: pure growth goes down the append path — warm
		// engines fold the new runs in without a rebuild — while rewrites
		// and deletions, which the delta path cannot express, reset the
		// pool so every scope rebuilds against the changed directory.
		w := live.NewWatcher(watchDirs...)
		if err := w.Baseline(); err != nil {
			log.Fatal(err)
		}
		ticker := time.NewTicker(*watchInterval)
		defer ticker.Stop()
		runner := &live.Runner{
			W:     w,
			Ticks: ticker.C,
			OnDelta: func(d live.Delta) {
				if len(d.Modified) > 0 || len(d.Removed) > 0 {
					dropped, err := srv.ResetPool("watch_rewrite")
					if err != nil {
						log.Printf("watch: reset: %v", err)
						return
					}
					log.Printf("watch: corpus rewritten (%d modified, %d removed); pool reset, %d engines dropped",
						len(d.Modified), len(d.Removed), dropped)
					return
				}
				runs := make([]*model.Run, 0, len(d.Added))
				for _, path := range d.Added { // sorted: absorption order is deterministic
					run, err := core.ParseResultFile(path)
					if err != nil {
						log.Printf("watch: %v", err)
						continue
					}
					runs = append(runs, run)
				}
				if len(runs) == 0 {
					return
				}
				gen, err := srv.AbsorbBaseGrowth(runs...)
				if err != nil {
					log.Printf("watch: absorb: %v", err)
					return
				}
				log.Printf("watch: absorbed %d new result file(s), generation %d", len(runs), gen)
			},
			OnError: func(err error) { log.Printf("watch: %v", err) },
		}
		go runner.Run(ctx)
		log.Printf("watching %s every %s", strings.Join(watchDirs, ", "), *watchInterval)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("serving %s on %s", src.Name(), *addr)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure (Shutdown is the other
		// path out), so any error here is fatal.
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("signal received, draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		// In-flight requests have drained; close the audit log last so
		// every served 200 made it into the chain.
		if audit != nil {
			if err := audit.Close(); err != nil {
				log.Fatalf("audit: %v", err)
			}
			log.Printf("audit log closed: %d records", audit.Records())
		}
	}
}
