// Command specparse parses a directory of SPECpower_ssj2008 result
// files, applies the paper's two-stage filter funnel, and emits the
// dataset as CSV (one row per run, with all derived metrics).
//
// Usage:
//
//	specparse -in corpus/ [-stage comparable|parsed|raw] [-o dataset.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specparse: ")
	in := flag.String("in", "corpus", "directory of .txt result files")
	stage := flag.String("stage", "comparable", "which pipeline stage to emit: raw, parsed, or comparable")
	out := flag.String("o", "-", "output path (- = stdout)")
	format := flag.String("format", "csv", "output format: csv (flattened metrics) or json (full runs)")
	workers := flag.Int("workers", 0, "parallel parsers (0 = GOMAXPROCS)")
	flag.Parse()

	eng := core.New(
		core.WithSource(core.DirSource{Dir: *in}),
		core.WithWorkers(*workers))
	ds, err := eng.Dataset()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(os.Stderr, ds.Funnel.String())

	var runs []*model.Run
	switch *stage {
	case "raw":
		runs = ds.Raw
	case "parsed":
		runs = ds.Parsed
	case "comparable":
		runs = ds.Comparable
	default:
		log.Fatalf("unknown stage %q (want raw, parsed, or comparable)", *stage)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		if err := analysis.RunsFrame(runs).WriteCSV(w); err != nil {
			log.Fatal(err)
		}
	case "json":
		if err := report.WriteJSON(w, runs); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q (want csv or json)", *format)
	}
}
