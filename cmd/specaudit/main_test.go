package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeChain builds a real chained log with n records, each carrying
// traceID (empty for pre-trace-era logs), and returns the verify
// result.
func writeChain(t *testing.T, n int, traceID string) obs.VerifyResult {
	t.Helper()
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := obs.OpenAuditLog(path, obs.AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		l.Append(obs.Entry{
			Time:         time.Unix(int64(1700000000+i), 0).UTC(),
			Fingerprint:  "fp",
			Analysis:     "clusters",
			Params:       "k=5",
			ResultDigest: "sha256:abc",
			TraceID:      traceID,
		})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := obs.VerifyChain(f)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHeadLineOldFormat pins backward compatibility: a log whose
// records carry no trace ids prints exactly the two-column line earlier
// specaudit versions printed, so externally stored anchors still
// compare byte-for-byte.
func TestHeadLineOldFormat(t *testing.T) {
	res := writeChain(t, 3, "")
	got := headLine(res)
	want := "3 " + res.HeadHash
	if got != want {
		t.Fatalf("headLine = %q, want %q", got, want)
	}
}

// TestHeadLineTraceColumn: a traced log appends the head record's trace
// id as a third column.
func TestHeadLineTraceColumn(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	res := writeChain(t, 2, tid)
	got := headLine(res)
	want := "2 " + res.HeadHash + " " + tid
	if got != want {
		t.Fatalf("headLine = %q, want %q", got, want)
	}
}

// TestHeadTraceIDFollowsHead: the column reflects the head record, not
// any earlier one — a log that stops carrying trace ids reverts to the
// two-column form.
func TestHeadTraceIDFollowsHead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := obs.OpenAuditLog(path, obs.AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(obs.Entry{Time: time.Unix(1700000000, 0).UTC(), Analysis: "a", TraceID: "deadbeefdeadbeefdeadbeefdeadbeef"})
	l.Append(obs.Entry{Time: time.Unix(1700000001, 0).UTC(), Analysis: "b"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := obs.VerifyChain(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeadTraceID != "" {
		t.Fatalf("head trace id %q, want empty (head record is untraced)", res.HeadTraceID)
	}
	if got, want := headLine(res), "2 "+res.HeadHash; got != want {
		t.Fatalf("headLine = %q, want %q", got, want)
	}
}
