// Command specaudit inspects the hash-chained audit logs specserve
// writes with -audit.
//
//	specaudit verify audit.log    check every link; exit 1 naming the
//	                              first broken record on failure
//	specaudit head audit.log      print the chain head hash — store it
//	                              externally as a truncation anchor
//
// head prints "<records> <hash>", plus the head record's trace id as a
// third column when the log carries one (logs written before trace
// support, or with tracing disabled, print the original two columns
// unchanged).
//
// verify proves internal consistency: sequential positions, each
// record's prev matching its predecessor's hash, each hash matching the
// recomputed record contents. Any mutated byte, inserted, removed, or
// reordered record, or torn final line fails with the record index. A
// log truncated cleanly at a record boundary still verifies — compare
// the reported head hash against an externally stored anchor (the head
// printed by an earlier run) to detect that case.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"repro/internal/obs"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  specaudit verify <file>   verify the hash chain
  specaudit head <file>     print record count and head hash
`)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("specaudit: ")
	if len(os.Args) != 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	res, verr := obs.VerifyChain(f)
	switch cmd {
	case "verify":
		if verr != nil {
			var ce *obs.ChainError
			if errors.As(verr, &ce) {
				log.Fatalf("FAIL %s: record %d: %s", path, ce.Index, ce.Reason)
			}
			log.Fatalf("FAIL %s: %v", path, verr)
		}
		fmt.Printf("OK %s: %d records", path, res.Records)
		if res.Records > 0 {
			fmt.Printf(", head %s", res.HeadHash)
		}
		fmt.Println()
	case "head":
		if verr != nil {
			log.Fatalf("FAIL %s: %v", path, verr)
		}
		fmt.Println(headLine(res))
	default:
		usage()
	}
}

// headLine renders the head command's output line. The trace id column
// appears only when the head record has one, so anchors stored from
// pre-trace logs remain byte-identical.
func headLine(res obs.VerifyResult) string {
	line := fmt.Sprintf("%d %s", res.Records, res.HeadHash)
	if res.HeadTraceID != "" {
		line += " " + res.HeadTraceID
	}
	return line
}
