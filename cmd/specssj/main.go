// Command specssj executes one full simulated SPECpower_ssj2008
// benchmark run end-to-end: the ssj workload engine (real goroutine
// workers, calibration, graduated load) measured through the ptdaemon
// TCP protocol against a simulated power analyzer, rendered as a
// result file.
//
// Usage:
//
//	specssj -cpu "EPYC 9754" [-sockets 2] [-mem 384] [-interval 200ms] [-o report.txt]
package main

import (
	"flag"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/ptd"
	"repro/internal/report"
	"repro/internal/ssj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specssj: ")
	cpuName := flag.String("cpu", "EPYC 9754", "catalog CPU to simulate (substring match)")
	sockets := flag.Int("sockets", 2, "populated sockets")
	memGB := flag.Int("mem", 384, "configured memory (GB)")
	interval := flag.Duration("interval", 200*time.Millisecond, "measurement interval length")
	warehouses := flag.Int("warehouses", runtime.GOMAXPROCS(0), "worker warehouses")
	out := flag.String("o", "-", "output report path (- = stdout)")
	flag.Parse()

	spec, err := catalog.Find(*cpuName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := power.SystemConfig{Sockets: *sockets, MemGB: *memGB}
	curve, err := power.NewCurve(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Power analyzer behind the ptdaemon protocol, coupled to the SUT's
	// load through a tracker.
	var tracker ptd.LoadTracker
	server, err := ptd.NewServer(ptd.CurveSource(curve, &tracker), 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	meter, err := ptd.Dial(addr, &tracker, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer meter.Close()
	log.Printf("ptdaemon listening on %s", addr)

	ssjCfg := ssj.DefaultConfig(*warehouses)
	ssjCfg.IntervalDuration = *interval
	engine, err := ssj.NewEngine(ssjCfg, meter)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running %s: %d warehouses, %v intervals", spec.Name, *warehouses, *interval)
	res, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("calibrated throughput: %.0f tx/s", res.CalibratedRate)

	run, err := ssj.AssembleRun(spec,
		power.SystemConfig{Sockets: *sockets, MemGB: *memGB, PSUWatts: 1100},
		ssj.RunMeta{
			TestDate:     model.YM(2024, time.June),
			SystemVendor: "specssj (simulated)",
			SystemName:   "Reference SUT",
			OSName:       runtime.GOOS + " (simulated host)",
			JVM:          "repro ssj engine (Go " + runtime.Version() + ")",
		}, res)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := report.Render(w, run); err != nil {
		log.Fatal(err)
	}
	log.Printf("overall score: %.0f ssj_ops/W (hardware-model prediction uses catalog calibration, not host speed)",
		run.OverallOpsPerWatt())
}
