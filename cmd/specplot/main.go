// Command specplot renders Figures 1–6 of the paper as SVG files.
//
// Usage:
//
//	specplot -out figures/ [-in corpus/] [-seed 14]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specplot: ")
	in := flag.String("in", "", "corpus directory (empty = generate in memory)")
	out := flag.String("out", "figures", "output directory for SVG files")
	seed := flag.Int64("seed", synth.DefaultSeed, "seed when generating in memory")
	flag.Parse()

	opts := []core.Option{core.WithSeed(*seed)}
	if *in != "" {
		opts = []core.Option{core.WithSource(core.DirSource{Dir: *in})}
	}
	eng := core.New(opts...)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	// Figures come out of the engine's named registry; each is computed
	// lazily and memoized.
	figure := func(name string) analysis.TrendFigure {
		fig, err := core.AnalysisAs[analysis.TrendFigure](eng, name)
		if err != nil {
			log.Fatal(err)
		}
		return fig
	}

	write := func(name, svg string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}

	vendorClass := func(v string) int {
		switch v {
		case "AMD":
			return 0
		case "Intel":
			return 1
		default:
			return 2
		}
	}
	classes := []string{"AMD", "Intel", "Other"}

	scatterSVG := func(fig analysis.TrendFigure, yLabel string, ax plot.Axes) string {
		pts := make([]plot.Pt, len(fig.Points))
		for i, p := range fig.Points {
			pts[i] = plot.Pt{X: p.Frac, Y: p.Value, Class: vendorClass(p.Vendor)}
		}
		ax.Title = fig.Name
		ax.XLabel = "Hardware Availability Date"
		ax.YLabel = yLabel
		ax.Width, ax.Height = 90, 40
		ax.ClassNames = classes
		return plot.SVGScatter(pts, ax)
	}

	// Figure 1: run counts per year as bars (one SVG).
	rows, err := core.AnalysisAs[[]analysis.Fig1Row](eng, "fig1")
	if err != nil {
		log.Fatal(err)
	}
	var f1Labels []string
	var f1Counts, f1Linux, f1AMD []float64
	for _, r := range rows {
		f1Labels = append(f1Labels, fmt.Sprint(r.Year))
		f1Counts = append(f1Counts, float64(r.Count))
		f1Linux = append(f1Linux, 100*r.OS["Linux"])
		f1AMD = append(f1AMD, 100*r.Vendor["AMD"])
	}
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = float64(r.Year)
	}
	write("fig1_shares.svg", plot.SVGLines([]plot.Series{
		{Name: "runs", X: xs, Y: f1Counts},
		{Name: "Linux %", X: xs, Y: f1Linux},
		{Name: "AMD %", X: xs, Y: f1AMD},
	}, plot.Axes{Title: "Figure 1: corpus composition (960 parsed runs)",
		XLabel: "Hardware Availability Date", Width: 90, Height: 40}))

	var osRows []plot.StackedRow
	for _, r := range rows {
		osRows = append(osRows, plot.StackedRow{Label: fmt.Sprint(r.Year), Shares: r.OS})
	}
	write("fig1_os_stacked.svg", plot.SVGStacked(osRows,
		[]string{"Windows", "Linux", "macOS", "Other"},
		plot.Axes{Title: "Figure 1: OS share per year", Width: 80, Height: 50}))

	write("fig2_power_per_socket.svg",
		scatterSVG(figure("fig2"), "Power per Socket (W)", plot.Axes{}))
	write("fig3_overall_efficiency.svg",
		scatterSVG(figure("fig3"), "Overall ssj_ops/W", plot.Axes{}))
	write("fig5_idle_fraction.svg",
		scatterSVG(figure("fig5"), "Idle Power / Full Load Power", plot.Axes{}))
	write("fig6_idle_quotient.svg",
		scatterSVG(figure("fig6"), "Extrapolated Idle Quotient", plot.Axes{YMin: 0.8, YMax: 3}))

	// Figure 4: one box-grid SVG per vendor at 70 % load.
	cells, err := core.AnalysisAs[[]analysis.Fig4Cell](eng, "fig4")
	if err != nil {
		log.Fatal(err)
	}
	for _, vendor := range []string{"AMD", "Intel"} {
		var labels []string
		var boxes []stats.BoxStats
		for _, c := range cells {
			if c.Vendor == vendor && c.Load == 70 {
				labels = append(labels, fmt.Sprint(c.Year))
				boxes = append(boxes, c.Box)
			}
		}
		write(fmt.Sprintf("fig4_releff_%s.svg", vendor),
			plot.SVGBoxes(labels, boxes, plot.Axes{
				Title: fmt.Sprintf("Figure 4: relative efficiency at 70%% load (%s)", vendor),
				Width: 90, Height: 40, YMin: 0.5, YMax: 1.5,
			}))
	}
}
