// Command specvet runs the repo's custom static-analysis suite
// (internal/lint) over module packages and fails on any unsuppressed
// finding. It is the mechanical gate behind the determinism and
// registry invariants: no wall clock, global randomness, environment
// reads, or unordered concurrency reachable from a registered
// analysis; no map iteration order escaping into output; no
// registrations outside init; no re-parsing of typed parameters.
//
// The driver is self-contained on go/ast and go/types (this
// environment has no golang.org/x/tools, so the go vet -vettool route
// is unavailable); run it directly:
//
//	specvet ./...
//	specvet -list
//	specvet -run nodeterminism,mapsort ./internal/cluster
//	specvet -allowed ./...
//
// Exit status 1 means unsuppressed findings (or a malformed/stale
// //lint:allow directive); 2 means the load itself failed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specvet: ")
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer subset (default all)")
	allowed := flag.Bool("allowed", false, "also print suppressed findings with their reasons")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		log.Fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		exitLoad(err)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		exitLoad(err)
	}
	dirs, err := lint.ExpandPatterns(cwd, patterns)
	if err != nil {
		exitLoad(err)
	}
	prog, err := lint.Load(root, dirs)
	if err != nil {
		exitLoad(err)
	}

	diags := lint.Run(prog, analyzers)
	failing := lint.Unsuppressed(diags)
	for _, d := range diags {
		if d.Suppressed && *allowed {
			fmt.Println(d)
		}
	}
	for _, d := range failing {
		fmt.Println(d)
	}
	if len(failing) > 0 {
		fmt.Printf("%d finding(s)\n", len(failing))
		os.Exit(1)
	}
}

func selectAnalyzers(csv string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if csv == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	var names []string
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}

func exitLoad(err error) {
	log.Print(err)
	os.Exit(2)
}
