// Command speccluster groups the machine configurations of a corpus
// into clusters and prints their phenotypes: dominant vendor, median
// cores and efficiency, year range.
//
// The corpus flags are the ones every tool shares (internal/cliutil):
// -in corpus directories or synth:<seed> specs, -cache, -filter,
// -workers. Clustering runs over the comparable slice of the corpus —
// the same 676-run population the paper's trend analyses use.
//
// -algo picks the algorithm. "kmeans" (default) is k-means++ with
// deterministic seeding: -seed seeds both the synthetic corpus and the
// clustering RNG, and -k 0 auto-selects k by the best silhouette over
// k = 2…8. "hac" is hierarchical agglomerative clustering under
// -linkage single/complete/average; cut the dendrogram either at -k
// clusters or at the -cut distance threshold. -features restricts the
// standardized feature vector; -sweep prints the elbow sweep
// (within-cluster SSE + silhouette per k); -json emits everything
// machine-readable, including per-run assignments.
//
// Usage:
//
//	speccluster [-in corpus/]... [-filter expr] [-k 4] [-json]
//	speccluster -algo hac -linkage complete -cut 2.5
//	speccluster -features score,cores,year -sweep
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/core"
)

// output is the -json document: the shared Result shape plus the
// phenotype profiles and, when requested, the elbow sweep.
type output struct {
	cluster.Result
	Profiles []cluster.Profile    `json:"profiles"`
	Sweep    []cluster.SweepPoint `json:"sweep,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("speccluster: ")
	corpus := cliutil.RegisterCorpusFlags(flag.CommandLine)
	k := flag.Int("k", 0, "cluster count (0 = auto-select by silhouette over k = 2…8; hac requires -k or -cut)")
	algo := flag.String("algo", "kmeans", "clustering algorithm: kmeans or hac")
	linkage := flag.String("linkage", "average", "hac linkage: single, complete, or average")
	cut := flag.Float64("cut", 0, "hac dendrogram distance threshold (overrides -k)")
	features := flag.String("features", "",
		"comma-separated feature subset (default all: "+strings.Join(cluster.FeatureNames(), ",")+")")
	sweep := flag.Bool("sweep", false, "also compute the k sweep (SSE + silhouette, k = 2…8)")
	asJSON := flag.Bool("json", false, "emit JSON (with per-run assignments) instead of text")
	flag.Parse()

	src, err := corpus.Source()
	if err != nil {
		log.Fatal(err)
	}
	eng := core.New(core.WithSource(src), core.WithWorkers(corpus.Workers))
	ds, err := eng.Dataset()
	if err != nil {
		log.Fatal(err)
	}
	var selected []string
	for _, f := range strings.Split(*features, ",") {
		if f = strings.TrimSpace(f); f != "" {
			selected = append(selected, f)
		}
	}
	m, err := cluster.Extract(ds.Comparable, cluster.Options{Features: selected})
	if err != nil {
		log.Fatal(err)
	}
	if len(m.Rows) < 2 {
		log.Fatalf("only %d comparable runs — nothing to cluster", len(m.Rows))
	}

	var sweepPts []cluster.SweepPoint
	needSweep := *sweep || (*algo == "kmeans" && *k == 0)
	if needSweep {
		kmax := min(8, len(m.Rows))
		sweepPts, err = cluster.SweepK(m, 2, kmax, corpus.Seed, corpus.Workers)
		if err != nil {
			log.Fatal(err)
		}
	}

	var labels []int
	var kk int
	switch *algo {
	case "kmeans":
		if kk = *k; kk == 0 {
			kk = cluster.AutoK(sweepPts)
		}
		res, err := cluster.KMeans(m, cluster.KMeansOptions{
			K: kk, Seed: corpus.Seed, Workers: corpus.Workers})
		if err != nil {
			log.Fatal(err)
		}
		labels = res.Labels
	case "hac":
		lk, err := cluster.ParseLinkage(*linkage)
		if err != nil {
			log.Fatal(err)
		}
		if *k == 0 && *cut == 0 {
			log.Fatal("-algo hac needs -k or -cut")
		}
		res, err := cluster.HAC(m, cluster.HACOptions{
			Linkage: lk, K: *k, Cut: *cut, Workers: corpus.Workers})
		if err != nil {
			log.Fatal(err)
		}
		labels, kk = res.Labels, res.K
	default:
		log.Fatalf("unknown -algo %q (kmeans, hac)", *algo)
	}

	algoName := *algo
	if algoName == "kmeans" {
		algoName = "kmeans++"
	} else {
		algoName = "hac/" + *linkage
	}
	out := output{
		Result:   cluster.NewResult(algoName, m, labels, kk, corpus.Workers),
		Profiles: cluster.Profiles(ds.Comparable, labels, kk),
		Sweep:    sweepPts,
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Fprintf(w, "%d comparable runs over features [%s]\n\n",
		len(m.Rows), strings.Join(m.Features, ", "))
	if *sweep {
		fmt.Fprint(w, cluster.SweepTable(sweepPts))
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, cluster.ProfileSet{
		Algo:       out.Algo,
		K:          out.K,
		Silhouette: out.Silhouette,
		Profiles:   out.Profiles,
	}.String())
}
