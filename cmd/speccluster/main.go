// Command speccluster groups the machine configurations of a corpus
// into clusters and prints their phenotypes: dominant vendor, median
// cores and efficiency, year range.
//
// The corpus flags are the ones every tool shares (internal/cliutil):
// -in corpus directories or synth:<seed> specs, -cache, -filter,
// -workers. Clustering runs over the comparable slice of the corpus —
// the same 676-run population the paper's trend analyses use.
//
// The clustering flags are a thin skin over the parameter schema the
// "clusters"/"cluster-profiles"/"cluster-sweep" registry analyses
// declare: each flag becomes a typed parameter assignment, resolved
// and validated exactly as specanalyze -p and the specserve query
// string are, and the computation itself runs through the shared
// engine path (so a bad value is a flag error here and a 400 there,
// never a panic).
//
// -algo picks the algorithm. "kmeans" (default) is k-means++ with
// deterministic seeding: -seed seeds both the synthetic corpus and the
// clustering RNG, and -k 0 auto-selects k by the best silhouette over
// k = 2…8. "hac" is hierarchical agglomerative clustering under
// -linkage single/complete/average; cut the dendrogram either at -k
// clusters or at the -cut distance threshold. "minibatch" is seeded
// mini-batch k-means (-batch sets the sample size) — the online
// variant the live serving path warm-starts across appends; from the
// CLI it behaves like kmeans with stochastic batched updates, still
// deterministic for a fixed -seed. -features restricts the
// standardized feature vector; -sweep prints the elbow sweep
// (within-cluster SSE + silhouette per k); -json emits everything
// machine-readable, including per-run assignments.
//
// Usage:
//
//	speccluster [-in corpus/]... [-filter expr] [-k 4] [-json]
//	speccluster -algo hac -linkage complete -cut 2.5
//	speccluster -features score,cores,year -sweep
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/core"
)

// output is the -json document: the shared Result shape plus the
// phenotype profiles and, when requested, the elbow sweep.
type output struct {
	cluster.Result
	Profiles []cluster.Profile    `json:"profiles"`
	Sweep    []cluster.SweepPoint `json:"sweep,omitempty"`
}

// resolve builds the parameter bag of one registered analysis from raw
// flag values, exiting with a flag-style error on anything the schema
// rejects.
func resolve(name string, raw map[string]string) core.Request {
	reg, ok := analysis.Lookup(name)
	if !ok {
		log.Fatalf("analysis %q not registered", name)
	}
	params, err := reg.Params.Resolve(raw)
	if err != nil {
		log.Fatal(err)
	}
	return core.Request{Name: name, Params: params}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("speccluster: ")
	corpus := cliutil.RegisterCorpusFlags(flag.CommandLine)
	k := flag.Int("k", 0, "cluster count (0 = auto-select by silhouette over k = 2…8; hac requires -k or -cut)")
	algo := flag.String("algo", "kmeans", "clustering algorithm: kmeans, hac, or minibatch")
	linkage := flag.String("linkage", "average", "hac linkage: single, complete, or average")
	cut := flag.Float64("cut", 0, "hac dendrogram distance threshold (overrides -k)")
	batch := flag.Int("batch", 128, "minibatch sample size per iteration")
	features := flag.String("features", "",
		"comma-separated feature subset (default all: "+strings.Join(cluster.FeatureNames(), ",")+")")
	sweep := flag.Bool("sweep", false, "also compute the k sweep (SSE + silhouette, k = 2…8)")
	asJSON := flag.Bool("json", false, "emit JSON (with per-run assignments) instead of text")
	flag.Parse()

	src, err := corpus.Source()
	if err != nil {
		log.Fatal(err)
	}
	// The flags become one parameter bag shared by "clusters" and
	// "cluster-profiles" (same schema, same partition), so both report
	// the same scenario.
	raw := map[string]string{
		"k":        strconv.Itoa(*k),
		"algo":     *algo,
		"linkage":  *linkage,
		"cut":      strconv.FormatFloat(*cut, 'g', -1, 64),
		"batch":    strconv.Itoa(*batch),
		"seed":     strconv.FormatInt(corpus.Seed, 10),
		"features": *features,
	}
	reqs := []core.Request{
		resolve("clusters", raw),
		resolve("cluster-profiles", raw),
	}
	// The sweep rides along whenever it informed the partition: asked
	// for explicitly, or implicitly behind auto-k — matching the JSON
	// document this command has always emitted in its default mode.
	needSweep := *sweep || (*algo != "hac" && *k == 0)
	if needSweep {
		reqs = append(reqs, resolve("cluster-sweep", map[string]string{
			"seed":     raw["seed"],
			"features": raw["features"],
			"kmax":     "8",
		}))
	}

	eng := core.New(core.WithSource(src), core.WithWorkers(corpus.Workers))
	results, err := eng.RunRequests(reqs...)
	if err != nil {
		log.Fatal(err)
	}
	out := output{
		Result:   results[0].Value.(cluster.Result),
		Profiles: results[1].Value.(cluster.ProfileSet).Profiles,
	}
	if needSweep {
		out.Sweep = results[2].Value.([]cluster.SweepPoint)
	}
	if out.K == 0 {
		n := 0
		if ds, err := eng.Dataset(); err == nil { // memoized: a cache read
			n = len(ds.Comparable)
		}
		log.Fatalf("only %d comparable runs — nothing to cluster", n)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Fprintf(w, "%d comparable runs over features [%s]\n\n",
		len(out.Assignments), strings.Join(out.Features, ", "))
	if *sweep {
		fmt.Fprint(w, cluster.SweepTable(out.Sweep))
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, cluster.ProfileSet{
		Algo:       out.Algo,
		K:          out.K,
		Silhouette: out.Silhouette,
		Profiles:   out.Profiles,
	}.String())
}
