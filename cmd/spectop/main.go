// Command spectop is a live terminal dashboard for a running specserve:
// it polls GET /metrics, /v1/stats, and /v1/pool and renders pool
// occupancy (one row per resident scope engine), request and stage
// latency summaries, and cache hit ratios (engine memo, cluster memo
// rings, gob parse cache), refreshing in place until interrupted.
//
// Usage:
//
//	spectop [-addr http://localhost:8080] [-interval 2s] [-once]
//
// -once renders a single snapshot and exits (no screen clearing) — the
// scriptable form used by CI smoke tests; the exit status is non-zero
// if any endpoint cannot be fetched or parsed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spectop: ")
	addr := flag.String("addr", "http://localhost:8080", "specserve base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll interval (live mode)")
	once := flag.Bool("once", false, "render one snapshot and exit")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	if *once {
		snap, err := fetch(client, *addr)
		if err != nil {
			log.Fatal(err)
		}
		render(os.Stdout, *addr, snap)
		return
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		snap, err := fetch(client, *addr)
		var buf strings.Builder
		buf.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
		if err != nil {
			fmt.Fprintf(&buf, "spectop: %v (retrying every %s)\n", err, *interval)
		} else {
			render(&buf, *addr, snap)
		}
		os.Stdout.WriteString(buf.String())
		select {
		case <-sigc:
			fmt.Println()
			return
		case <-tick.C:
		}
	}
}

// snapshot is one poll of the three introspection surfaces.
type snapshot struct {
	stats   serve.StatsSnapshot
	pool    serve.PoolSnapshot
	metrics map[string]float64
}

func fetch(client *http.Client, base string) (*snapshot, error) {
	snap := &snapshot{}
	if err := getJSON(client, base+"/v1/stats", &snap.stats); err != nil {
		return nil, err
	}
	if err := getJSON(client, base+"/v1/pool", &snap.pool); err != nil {
		return nil, err
	}
	body, err := get(client, base+"/metrics")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	snap.metrics = parseMetrics(body)
	return snap, nil
}

func get(client *http.Client, url string) (io.ReadCloser, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return resp.Body, nil
}

func getJSON(client *http.Client, url string, v any) error {
	body, err := get(client, url)
	if err != nil {
		return err
	}
	defer body.Close()
	if err := json.NewDecoder(body).Decode(v); err != nil {
		return fmt.Errorf("%s: decode: %w", url, err)
	}
	return nil
}

// parseMetrics reads a Prometheus text exposition into a flat
// series → value map, keys kept verbatim including label sets
// (`specserve_pool_evictions_total{reason="lru"}`).
func parseMetrics(r io.Reader) map[string]float64 {
	m := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		m[line[:i]] = v
	}
	return m
}

// ratio renders hits/(hits+misses) as a percentage, "-" when idle.
func ratio(hits, misses float64) string {
	total := hits + misses
	if total == 0 {
		return "    -"
	}
	return fmt.Sprintf("%5.1f%%", 100*hits/total)
}

func ms(ns int64) string {
	return fmt.Sprintf("%8.2fms", float64(ns)/1e6)
}

func approxSize(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func shortFp(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	if fp == "" {
		return "-"
	}
	return fp
}

func render(w io.Writer, addr string, s *snapshot) {
	st, mx := s.stats, s.metrics
	fmt.Fprintf(w, "specserve top — %s   up %.1fs   analyses %d\n\n",
		addr, st.UptimeSeconds, st.Analyses)

	fmt.Fprintf(w, "requests   total %-8d 304 %-6d 4xx %-6d 5xx %-6d busy-rejects %-6d in-flight %d\n",
		st.Requests, st.NotModified, st.ClientErrors, st.Errors, st.RejectedBusy, st.InFlight)
	fmt.Fprintf(w, "pool       %d/%d engines   builds %-6d hits %-6d misses %-6d joins %-6d hit ratio %s\n",
		st.PoolEngines, st.PoolCapacity, st.EngineBuilds,
		st.PoolHits, st.PoolMisses, st.PoolJoins,
		strings.TrimSpace(ratio(float64(st.PoolHits), float64(st.PoolMisses))))
	fmt.Fprintf(w, "evictions  lru %.0f   build_failed %.0f   ingestion_failed %.0f\n",
		mx[`specserve_pool_evictions_total{reason="lru"}`],
		mx[`specserve_pool_evictions_total{reason="build_failed"}`],
		mx[`specserve_pool_evictions_total{reason="ingestion_failed"}`])
	if st.Live != nil {
		fmt.Fprintf(w, "live       generation %-6d appends %-6d appended runs %d\n",
			st.Live.Generation, st.Live.Appends, st.Live.AppendedRuns)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-28s %-12s %4s %6s %6s %7s %6s %9s %10s\n",
		"POOL SCOPE", "FPRINT", "GEN", "AGE", "HITS", "RUNS", "MEMOS", "MEMO H/M", "~BYTES")
	for _, e := range s.pool.Engines { // server-sorted by canonical filter
		name := e.Filter
		if name == "" {
			name = "(all)"
		}
		if e.Building {
			fmt.Fprintf(w, "%-28s %-12s %4s %6d %6d %s\n",
				name, "building…", "-", e.AgeRequests, e.Hits, "")
			continue
		}
		fmt.Fprintf(w, "%-28s %-12s %4d %6d %6d %7d %6d %4d/%-4d %10s\n",
			name, shortFp(e.Fingerprint), e.Generation, e.AgeRequests, e.Hits, e.RunsIngested,
			e.MemoEntries, e.MemoHits, e.MemoMisses, approxSize(e.ApproxBytes))
	}
	if len(s.pool.Engines) == 0 {
		fmt.Fprintf(w, "  (no resident engines yet)\n")
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-14s %8s %10s %10s %10s\n", "STAGE", "COUNT", "P50", "P95", "P99")
	for _, sg := range st.Stages { // canonical stage order from the server
		fmt.Fprintf(w, "%-14s %8d %10s %10s %10s\n",
			sg.Stage, sg.Count, ms(sg.P50Ns), ms(sg.P95Ns), ms(sg.P99Ns))
	}
	if len(st.Stages) == 0 {
		fmt.Fprintf(w, "  (no stage samples yet)\n")
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-16s %7s   %s\n", "CACHE", "RATIO", "HITS/MISSES")
	cacheRow := func(name, hitsKey, missesKey string) {
		h, m := mx[hitsKey], mx[missesKey]
		fmt.Fprintf(w, "%-16s %7s   %.0f/%.0f\n", name, ratio(h, m), h, m)
	}
	cacheRow("memo", "specserve_memo_hits_total", "specserve_memo_misses_total")
	cacheRow("ring:partition",
		`specserve_memo_ring_hits_total{ring="partition"}`,
		`specserve_memo_ring_misses_total{ring="partition"}`)
	cacheRow("ring:sweep",
		`specserve_memo_ring_hits_total{ring="sweep"}`,
		`specserve_memo_ring_misses_total{ring="sweep"}`)
	cacheRow("parse",
		"specserve_parse_cache_hits_total", "specserve_parse_cache_misses_total")

	if st.Audit != nil {
		fmt.Fprintf(w, "\naudit      records %-8d queue %.0f   flushes batch %.0f / interval %.0f / close %.0f\n",
			st.Audit.Records,
			mx["specserve_audit_queue_depth"],
			mx[`specserve_audit_queue_flushes_total{reason="batch"}`],
			mx[`specserve_audit_queue_flushes_total{reason="interval"}`],
			mx[`specserve_audit_queue_flushes_total{reason="close"}`])
	}
}
