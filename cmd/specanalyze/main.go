// Command specanalyze runs the paper's longitudinal study and prints
// figures and statistics as a terminal report or JSON.
//
// -in selects a corpus and is repeatable: each value is either a parsed
// corpus directory (e.g. produced by specgen, streamed through the
// core.DirSource worker pool) or "synth:<seed>" for an in-memory
// synthetic corpus; several -in flags are merged into one stream.
// Without -in, the default calibrated corpus is generated in memory.
// -cache keeps a gob parse cache next to each corpus directory so
// repeat runs skip the text parser; -filter slices the corpus with a
// predicate expression ("vendor=AMD,since=2021" — see core.ParseFilter).
// -only selects individual analyses by registry name (see -list);
// -json switches to machine-readable output. Analyses that declare
// typed parameters (see -list, or GET /v1/analyses on specserve) take
// per-run values through the repeatable -p name.key=value flag —
// assignments are validated against the declared schema, exactly as
// the HTTP server validates query parameters. The corpus flags are
// shared with specserve (internal/cliutil), which serves the same
// analyses over HTTP instead of a one-shot report.
//
// Usage:
//
//	specanalyze [-in corpus/]... [-in synth:14] [-cache] [-filter expr]
//	            [-seed 14] [-only fig3,funnel] [-json] [-list]
//	            [-p clusters.k=5] [-p clusters.linkage=average]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cliutil"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specanalyze: ")
	corpus := cliutil.RegisterCorpusFlags(flag.CommandLine)
	params := cliutil.RegisterParamFlags(flag.CommandLine)
	only := flag.String("only", "", "comma-separated analysis names to run (empty = full report)")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text")
	list := flag.Bool("list", false, "list registered analyses (and their parameters) and exit")
	flag.Parse()

	if *list {
		for _, name := range analysis.Names() {
			reg, _ := analysis.Lookup(name)
			fmt.Printf("%-16s %s\n", name, reg.Description)
			for _, par := range reg.Params {
				line := fmt.Sprintf("  -p %s.%s (%s", name, par.Name, par.Kind)
				if def := par.DefaultString(); def != "" {
					line += ", default " + def
				}
				line += ")"
				if par.Description != "" {
					line += "  " + par.Description
				}
				fmt.Println(line)
			}
		}
		return
	}

	src, err := corpus.Source()
	if err != nil {
		log.Fatal(err)
	}
	eng := core.New(core.WithSource(src), core.WithWorkers(corpus.Workers))

	var names []string
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	reqs, err := params.Requests(names)
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch {
	case *asJSON:
		if err := eng.WriteJSONRequests(w, reqs...); err != nil {
			log.Fatal(err)
		}
	case len(names) > 0:
		results, err := eng.RunRequests(reqs...)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			if err := core.WriteAnalysisText(w, res); err != nil {
				log.Fatal(err)
			}
		}
	default:
		// The curated text report renders fixed sections with default
		// parameters; silently ignoring -p there would be worse than
		// refusing.
		if len(params) > 0 {
			log.Fatal("-p needs -only or -json (the full text report always renders defaults)")
		}
		if err := eng.WriteReport(w); err != nil {
			log.Fatal(err)
		}
	}
}
