// Command specanalyze runs the paper's longitudinal study and prints
// figures and statistics as a terminal report or JSON.
//
// -in selects a corpus and is repeatable: each value is either a parsed
// corpus directory (e.g. produced by specgen, streamed through the
// core.DirSource worker pool) or "synth:<seed>" for an in-memory
// synthetic corpus; several -in flags are merged into one stream.
// Without -in, the default calibrated corpus is generated in memory.
// -cache keeps a gob parse cache next to each corpus directory so
// repeat runs skip the text parser; -filter slices the corpus with a
// predicate expression ("vendor=AMD,since=2021" — see core.ParseFilter).
// -only selects individual analyses by registry name (see -list);
// -json switches to machine-readable output.
//
// Usage:
//
//	specanalyze [-in corpus/]... [-in synth:14] [-cache] [-filter expr]
//	            [-seed 14] [-only fig3,funnel] [-json] [-list]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/synth"
)

// multiFlag collects repeated -in values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	// An empty -in (e.g. an unset shell variable) falls through to the
	// default in-memory corpus, as the usage string promises.
	if v != "" {
		*m = append(*m, v)
	}
	return nil
}

// sourceFor builds the source for one -in value: a corpus directory
// (cached when asked) or "synth:<seed>".
func sourceFor(in string, cache bool) (core.Source, error) {
	if spec, ok := strings.CutPrefix(in, "synth:"); ok {
		seed, err := strconv.ParseInt(spec, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-in %q: synth seed must be an integer", in)
		}
		opt := synth.DefaultOptions()
		opt.Seed = seed
		return core.SynthSource{Options: opt}, nil
	}
	if cache {
		return core.CachedSource{Dir: in}, nil
	}
	return core.DirSource{Dir: in}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("specanalyze: ")
	var ins multiFlag
	flag.Var(&ins, "in", "corpus directory or synth:<seed>; repeatable, merged in order (empty = generate in memory)")
	seed := flag.Int64("seed", synth.DefaultSeed, "seed when generating in memory")
	workers := flag.Int("workers", 0, "parallel parsers and analyses (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", false, "keep a gob parse cache next to each corpus directory")
	filter := flag.String("filter", "", "corpus slice, e.g. \"vendor=AMD,since=2021\" (keys: vendor, os, year, since)")
	only := flag.String("only", "", "comma-separated analysis names to run (empty = full report)")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text")
	list := flag.Bool("list", false, "list registered analyses and exit")
	flag.Parse()

	if *list {
		for _, name := range analysis.Names() {
			reg, _ := analysis.Lookup(name)
			fmt.Printf("%-12s %s\n", name, reg.Description)
		}
		return
	}

	var src core.Source
	switch len(ins) {
	case 0:
		opt := synth.DefaultOptions()
		opt.Seed = *seed
		src = core.SynthSource{Options: opt}
	case 1:
		s, err := sourceFor(ins[0], *cache)
		if err != nil {
			log.Fatal(err)
		}
		src = s
	default:
		merged := make(core.MergeSource, len(ins))
		for i, in := range ins {
			s, err := sourceFor(in, *cache)
			if err != nil {
				log.Fatal(err)
			}
			merged[i] = s
		}
		src = merged
	}
	if *filter != "" {
		keep, err := core.ParseFilter(*filter)
		if err != nil {
			log.Fatal(err)
		}
		src = core.FilterSource{Inner: src, Keep: keep, Desc: *filter}
	}
	eng := core.New(core.WithSource(src), core.WithWorkers(*workers))

	var names []string
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch {
	case *asJSON:
		if err := eng.WriteJSON(w, names...); err != nil {
			log.Fatal(err)
		}
	case len(names) > 0:
		results, err := eng.Run(names...)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			if err := core.WriteAnalysisText(w, res); err != nil {
				log.Fatal(err)
			}
		}
	default:
		if err := eng.WriteReport(w); err != nil {
			log.Fatal(err)
		}
	}
}
