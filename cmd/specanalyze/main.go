// Command specanalyze runs the paper's longitudinal study and prints
// figures and statistics as a terminal report or JSON.
//
// With -in it analyses a parsed corpus directory (e.g. produced by
// specgen), streamed through the core.DirSource worker pool; without
// it, it generates the default calibrated corpus in memory. -only
// selects individual analyses by registry name (see -list); -json
// switches to machine-readable output.
//
// Usage:
//
//	specanalyze [-in corpus/] [-seed 14] [-only fig3,funnel] [-json] [-list]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specanalyze: ")
	in := flag.String("in", "", "corpus directory (empty = generate in memory)")
	seed := flag.Int64("seed", synth.DefaultSeed, "seed when generating in memory")
	workers := flag.Int("workers", 0, "parallel parsers (0 = GOMAXPROCS)")
	only := flag.String("only", "", "comma-separated analysis names to run (empty = full report)")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text")
	list := flag.Bool("list", false, "list registered analyses and exit")
	flag.Parse()

	if *list {
		for _, name := range analysis.Names() {
			reg, _ := analysis.Lookup(name)
			fmt.Printf("%-12s %s\n", name, reg.Description)
		}
		return
	}

	opts := []core.Option{core.WithWorkers(*workers)}
	if *in != "" {
		opts = append(opts, core.WithSource(core.DirSource{Dir: *in}))
	} else {
		opts = append(opts, core.WithSeed(*seed))
	}
	eng := core.New(opts...)

	var names []string
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch {
	case *asJSON:
		if err := eng.WriteJSON(w, names...); err != nil {
			log.Fatal(err)
		}
	case len(names) > 0:
		results, err := eng.Run(names...)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			if err := core.WriteAnalysisText(w, res); err != nil {
				log.Fatal(err)
			}
		}
	default:
		if err := eng.WriteReport(w); err != nil {
			log.Fatal(err)
		}
	}
}
