// Command specanalyze runs the paper's full longitudinal study and
// prints every figure and statistic as a terminal report.
//
// With -in it analyses a parsed corpus directory (e.g. produced by
// specgen); without it, it generates the default calibrated corpus in
// memory.
//
// Usage:
//
//	specanalyze [-in corpus/] [-seed 14]
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specanalyze: ")
	in := flag.String("in", "", "corpus directory (empty = generate in memory)")
	seed := flag.Int64("seed", synth.DefaultSeed, "seed when generating in memory")
	workers := flag.Int("workers", 0, "parallel parsers (0 = GOMAXPROCS)")
	flag.Parse()

	var study *core.Study
	var err error
	if *in != "" {
		study, err = core.LoadStudy(*in, *workers)
	} else {
		opt := synth.DefaultOptions()
		opt.Seed = *seed
		var runs, genErr = core.GenerateCorpus(opt)
		if genErr != nil {
			log.Fatal(genErr)
		}
		study = core.NewStudy(runs)
	}
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := study.WriteReport(w); err != nil {
		log.Fatal(err)
	}
}
